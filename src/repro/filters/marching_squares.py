"""Vectorized marching squares: 2-D contour lines over uniform grids.

This is the algorithm behind the paper's Fig. 3 example (a contour of value
5 over an 8x6 mesh).  Cells are the lattice squares; a point is *inside*
when its value is ``>= value``; a contour segment crosses every cell edge
whose endpoints classify differently, with linear interpolation locating the
crossing.

Ambiguous saddle cases (two opposite corners inside) are resolved with the
midpoint decider: the cell-centre average picks which diagonal pairing is
used, the same rule VTK's synchronized templates apply.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError

__all__ = ["marching_squares"]

# Cell-local corner layout (x right, y up):
#   c3 --e2-- c2
#   |          |
#   e3        e1
#   |          |
#   c0 --e0-- c1
# Case index = c0 | c1<<1 | c2<<2 | c3<<3, bit set when corner >= value.
#
# For each non-ambiguous case the table lists the cell edges joined by
# contour segments, as (edge_a, edge_b) pairs.
_SEGMENTS: dict[int, list[tuple[int, int]]] = {
    0: [],
    1: [(3, 0)],
    2: [(0, 1)],
    3: [(3, 1)],
    4: [(1, 2)],
    6: [(0, 2)],
    7: [(3, 2)],
    8: [(2, 3)],
    9: [(2, 0)],
    11: [(2, 1)],
    12: [(1, 3)],
    13: [(1, 0)],
    14: [(0, 3)],
    15: [],
}
# Ambiguous cases: 5 (c0,c2 inside) and 10 (c1,c3 inside); resolved at runtime.
_CASE5_JOINED = [(3, 2), (1, 0)]   # centre inside: contours hug c1/c3 corners
_CASE5_SPLIT = [(3, 0), (1, 2)]    # centre outside: contours hug c0/c2 corners
_CASE10_JOINED = [(0, 3), (2, 1)]  # centre inside: contours hug c0/c2 corners
_CASE10_SPLIT = [(0, 1), (2, 3)]   # centre outside: contours hug c1/c3 corners


def _interp_on_edges(edge_ids, t, us, vs, ci, cj):
    """World coordinates of crossing points on cell edges.

    ``edge_ids``: which local edge (0..3); ``t``: interpolation parameter
    in [0, 1] along that edge's canonical direction; ``us``/``vs``: the
    per-axis lattice coordinates; ``ci``/``cj``: cell column/row indices.
    """
    xs = np.empty(edge_ids.size, dtype=np.float64)
    ys = np.empty(edge_ids.size, dtype=np.float64)
    for e in range(4):
        m = edge_ids == e
        if not m.any():
            continue
        i = ci[m]
        j = cj[m]
        tt = t[m]
        if e == 0:      # c0 -> c1 (bottom, +x)
            xs[m] = us[i] + tt * (us[i + 1] - us[i])
            ys[m] = vs[j]
        elif e == 1:    # c1 -> c2 (right, +y)
            xs[m] = us[i + 1]
            ys[m] = vs[j] + tt * (vs[j + 1] - vs[j])
        elif e == 2:    # c3 -> c2 (top, +x)
            xs[m] = us[i] + tt * (us[i + 1] - us[i])
            ys[m] = vs[j + 1]
        else:           # c0 -> c3 (left, +y)
            xs[m] = us[i]
            ys[m] = vs[j] + tt * (vs[j + 1] - vs[j])
    return xs, ys


def marching_squares(
    field: np.ndarray,
    value: float,
    origin=(0.0, 0.0),
    spacing=(1.0, 1.0),
    cell_mask: np.ndarray | None = None,
    axes=None,
) -> np.ndarray:
    """Contour a 2-D scalar field at ``value``.

    Parameters
    ----------
    field:
        ``(ny, nx)`` scalar array (row = y, column = x).
    value:
        Contour value.
    origin, spacing:
        World placement of a *uniform* lattice; ignored when ``axes`` is
        given.
    cell_mask:
        Optional ``(ny-1, nx-1)`` boolean array; cells where it is False are
        skipped.  Used by the post-filter to restrict contouring to complete
        cells.
    axes:
        Optional ``(u_coords, v_coords)`` for rectilinear lattices.

    Returns
    -------
    segments : ndarray
        ``(n, 2, 2)`` array of line segments, ``segments[s, endpoint, xy]``.
    """
    field = np.asarray(field)
    if field.ndim != 2 or field.shape[0] < 2 or field.shape[1] < 2:
        raise FilterError(f"field must be (ny>=2, nx>=2); got shape {field.shape}")
    ny, nx = field.shape
    if axes is None:
        us = float(origin[0]) + float(spacing[0]) * np.arange(nx)
        vs = float(origin[1]) + float(spacing[1]) * np.arange(ny)
    else:
        us = np.ascontiguousarray(axes[0], dtype=np.float64)
        vs = np.ascontiguousarray(axes[1], dtype=np.float64)
        if us.size != nx or vs.size != ny:
            raise FilterError(
                f"axes lengths ({us.size}, {vs.size}) do not match field "
                f"shape (nx={nx}, ny={ny})"
            )

    f = field.astype(np.float64, copy=False)
    inside = f >= value
    c0 = inside[:-1, :-1]
    c1 = inside[:-1, 1:]
    c2 = inside[1:, 1:]
    c3 = inside[1:, :-1]
    case = (
        c0.astype(np.uint8)
        | (c1.astype(np.uint8) << 1)
        | (c2.astype(np.uint8) << 2)
        | (c3.astype(np.uint8) << 3)
    )
    if cell_mask is not None:
        cell_mask = np.asarray(cell_mask, dtype=bool)
        if cell_mask.shape != case.shape:
            raise FilterError(
                f"cell_mask shape {cell_mask.shape} != cells shape {case.shape}"
            )
        case = np.where(cell_mask, case, 0)

    # Corner values per cell, needed for interpolation.
    v0 = f[:-1, :-1]
    v1 = f[:-1, 1:]
    v2 = f[1:, 1:]
    v3 = f[1:, :-1]

    def edge_t(e, rows, cols):
        """Interpolation parameter of `value` along local edge e of cells."""
        if e == 0:
            a, b = v0[rows, cols], v1[rows, cols]
        elif e == 1:
            a, b = v1[rows, cols], v2[rows, cols]
        elif e == 2:
            a, b = v3[rows, cols], v2[rows, cols]
        else:
            a, b = v0[rows, cols], v3[rows, cols]
        denom = b - a
        t = np.where(denom != 0.0, (value - a) / np.where(denom == 0, 1, denom), 0.5)
        return np.clip(t, 0.0, 1.0)

    out_a: list[np.ndarray] = []
    out_b: list[np.ndarray] = []

    def emit(rows, cols, pairs):
        for ea, eb in pairs:
            ta = edge_t(ea, rows, cols)
            tb = edge_t(eb, rows, cols)
            ax, ay = _interp_on_edges(np.full(rows.size, ea), ta, us, vs, cols, rows)
            bx, by = _interp_on_edges(np.full(rows.size, eb), tb, us, vs, cols, rows)
            out_a.append(np.stack([ax, ay], axis=1))
            out_b.append(np.stack([bx, by], axis=1))

    for c, pairs in _SEGMENTS.items():
        if not pairs:
            continue
        rows, cols = np.nonzero(case == c)
        if rows.size:
            emit(rows, cols, pairs)

    # Ambiguous saddles: midpoint decider.
    for c, joined, split in (
        (5, _CASE5_JOINED, _CASE5_SPLIT),
        (10, _CASE10_JOINED, _CASE10_SPLIT),
    ):
        rows, cols = np.nonzero(case == c)
        if not rows.size:
            continue
        centre = 0.25 * (
            v0[rows, cols] + v1[rows, cols] + v2[rows, cols] + v3[rows, cols]
        )
        inside_centre = centre >= value
        for mask_sel, pairs in ((inside_centre, joined), (~inside_centre, split)):
            if mask_sel.any():
                emit(rows[mask_sel], cols[mask_sel], pairs)

    if not out_a:
        return np.zeros((0, 2, 2), dtype=np.float64)
    a = np.concatenate(out_a)
    b = np.concatenate(out_b)
    return np.stack([a, b], axis=1)
