"""Threshold filter: extract points whose scalar value lies in a range.

A second selective filter alongside contouring; used by examples and by the
offload planner's selectivity probes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.grid.array import DataArray
from repro.grid.polydata import CellArray, PolyData
from repro.grid.uniform import UniformGrid
from repro.pipeline.filter_base import Filter

__all__ = ["ThresholdPoints", "threshold_point_ids"]


def threshold_point_ids(
    grid, array_name: str, lower: float, upper: float
) -> np.ndarray:
    """Flat ids of points whose scalar value is in ``[lower, upper]``."""
    if lower > upper:
        raise FilterError(f"lower ({lower}) > upper ({upper})")
    arr = grid.point_data.get(array_name)
    if arr.components != 1:
        raise FilterError(f"array {array_name!r} is not a scalar field")
    mask = (arr.values >= lower) & (arr.values <= upper)
    return np.nonzero(mask)[0].astype(np.int64)


class ThresholdPoints(Filter):
    """Extract grid points in a scalar range as vertex :class:`PolyData`."""

    def __init__(self, array_name: str | None = None, lower: float = -np.inf, upper: float = np.inf):
        super().__init__()
        self._array_name = array_name
        self._lower = float(lower)
        self._upper = float(upper)

    def set_array_name(self, name: str) -> None:
        self._array_name = name
        self.modified()

    def set_range(self, lower: float, upper: float) -> None:
        if lower > upper:
            raise FilterError(f"lower ({lower}) > upper ({upper})")
        self._lower = float(lower)
        self._upper = float(upper)
        self.modified()

    def _execute(self, grid) -> PolyData:
        from repro.filters.contour import STRUCTURED_GRID_TYPES

        if not isinstance(grid, STRUCTURED_GRID_TYPES):
            raise FilterError(
                f"ThresholdPoints expects a UniformGrid or RectilinearGrid, "
                f"got {type(grid).__name__}"
            )
        if self._array_name is None:
            raise FilterError("ThresholdPoints has no array name configured")
        ids = threshold_point_ids(grid, self._array_name, self._lower, self._upper)
        points = grid.point_ids_to_coords(ids)
        out = PolyData(points)
        out.verts = CellArray.from_uniform(
            np.arange(ids.size, dtype=np.int64).reshape(-1, 1)
        )
        arr = grid.point_data.get(self._array_name)
        out.point_data.add(DataArray(self._array_name, arr.values[ids]))
        return out
