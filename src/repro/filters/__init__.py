"""Stock dataset filters: contouring, thresholding, calculators.

:class:`~repro.filters.contour.ContourFilter` is the library's equivalent of
``vtkContourFilter`` restricted to uniform rectilinear grids — the filter the
paper splits into a pre-/post-filter pair.  Its geometry kernels live in
:mod:`repro.filters.marching_squares` (2-D) and
:mod:`repro.filters.marching_tets` (3-D).
"""

from repro.filters.calculator import ArrayCalculator
from repro.filters.geometry import (
    component_sizes,
    connected_components,
    segment_length,
    surface_area,
    weld_points,
)
from repro.filters.contour import ContourFilter, contour_grid
from repro.filters.marching_squares import marching_squares
from repro.filters.marching_tets import marching_tetrahedra
from repro.filters.slice import SliceFilter, slice_grid
from repro.filters.threshold import ThresholdPoints

__all__ = [
    "ContourFilter",
    "contour_grid",
    "marching_squares",
    "marching_tetrahedra",
    "ThresholdPoints",
    "SliceFilter",
    "slice_grid",
    "ArrayCalculator",
    "weld_points",
    "surface_area",
    "segment_length",
    "connected_components",
    "component_sizes",
]
