"""Axis-aligned slice filter: extract one plane of a uniform grid.

The second-most-common selective filter in visualization practice after
contouring (ParaView's Slice with an axis-aligned plane).  Slicing a
``N^3`` grid needs at most *two* lattice planes of data — a 2/N fraction —
which makes it the natural second offload target the paper's conclusion
calls for ("our current experiments were limited to a single filter
type"); see :mod:`repro.core.slice_ndp` for its pre/post split.

The output is a quad mesh (two triangles per cell) in the slicing plane,
with every requested point array linearly interpolated onto it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.grid.array import DataArray
from repro.grid.polydata import CellArray, PolyData
from repro.grid.uniform import UniformGrid
from repro.pipeline.filter_base import Filter

__all__ = ["SliceFilter", "slice_grid", "slice_plane_indices"]

_AXES = {"x": 0, "y": 1, "z": 2}


def slice_plane_indices(grid, axis: int, coordinate: float):
    """Bracketing lattice planes for a world coordinate along ``axis``.

    Works for uniform and rectilinear grids (anything exposing
    ``axis_coords``).  Returns ``(i0, i1, t)``: the plane indices and the
    interpolation parameter in [0, 1] (``i0 == i1`` and ``t == 0`` on
    exact hits).
    """
    if axis not in (0, 1, 2):
        raise FilterError(f"axis must be 0..2, got {axis}")
    coords = np.asarray(grid.axis_coords(axis), dtype=np.float64)
    lo, hi = float(coords[0]), float(coords[-1])
    if not lo <= coordinate <= hi:
        raise FilterError(
            f"slice coordinate {coordinate} outside grid range [{lo}, {hi}] "
            f"on axis {axis}"
        )
    i0 = int(np.searchsorted(coords, coordinate, side="right")) - 1
    i0 = min(max(i0, 0), coords.size - 1)
    if i0 == coords.size - 1:
        return i0, i0, 0.0
    span = coords[i0 + 1] - coords[i0]
    t = (coordinate - coords[i0]) / span
    # Snap near-exact hits on either bracketing plane: world coordinates
    # like origin + k*spacing rarely reproduce k exactly in binary.
    if t < 1e-9:
        return i0, i0, 0.0
    if t > 1.0 - 1e-9:
        return i0 + 1, i0 + 1, 0.0
    return i0, i0 + 1, float(t)


def _plane_axes(axis: int) -> tuple[int, int]:
    """The two in-plane axes (u, v) for a slice normal to ``axis``."""
    return tuple(a for a in range(3) if a != axis)  # type: ignore[return-value]


def _extract_plane(field: np.ndarray, axis: int, index: int) -> np.ndarray:
    """One lattice plane of a (nz, ny, nx) field; world axis order."""
    # field axes are (z, y, x) == world axes (2, 1, 0)
    field_axis = 2 - axis
    return np.take(field, index, axis=field_axis)


def slice_grid(
    grid,
    axis: int,
    coordinate: float,
    array_names: list[str] | None = None,
) -> PolyData:
    """Slice a grid with an axis-aligned plane.

    Parameters
    ----------
    grid:
        Input uniform or rectilinear grid (3-D).
    axis, coordinate:
        Plane normal axis (0=x, 1=y, 2=z) and its world coordinate.
    array_names:
        Point arrays to interpolate onto the slice (default: all scalars).

    Returns
    -------
    PolyData
        A triangulated quad mesh with interpolated point data.
    """
    if grid.is_2d:
        raise FilterError("slice_grid expects a 3-D grid")
    i0, i1, t = slice_plane_indices(grid, axis, coordinate)
    ua, va = _plane_axes(axis)
    nu, nv = grid.dims[ua], grid.dims[va]

    # Points: the lattice (u, v) positions at the slice coordinate.
    us = np.asarray(grid.axis_coords(ua), dtype=np.float64)
    vs = np.asarray(grid.axis_coords(va), dtype=np.float64)
    uu, vv = np.meshgrid(us, vs, indexing="xy")  # shape (nv, nu)
    points = np.empty((nu * nv, 3), dtype=np.float64)
    points[:, ua] = uu.reshape(-1)
    points[:, va] = vv.reshape(-1)
    points[:, axis] = coordinate

    # Quads -> two triangles per cell, u fastest.
    iu = np.arange(nu - 1)
    iv = np.arange(nv - 1)
    gu, gv = np.meshgrid(iu, iv, indexing="xy")
    p00 = (gv * nu + gu).reshape(-1)
    p10 = p00 + 1
    p01 = p00 + nu
    p11 = p01 + 1
    tris = np.empty((p00.size * 2, 3), dtype=np.int64)
    tris[0::2] = np.stack([p00, p10, p11], axis=1)
    tris[1::2] = np.stack([p00, p11, p01], axis=1)

    out = PolyData(points)
    out.polys = CellArray.from_uniform(tris)

    names = array_names if array_names is not None else [
        arr.name for arr in grid.point_data if arr.components == 1
    ]
    for name in names:
        field = grid.scalar_field(name)
        plane0 = _extract_plane(field, axis, i0)
        if i1 == i0:
            sliced = plane0.astype(np.float64)
        else:
            plane1 = _extract_plane(field, axis, i1)
            sliced = (1.0 - t) * plane0 + t * plane1
        # plane arrays come out as (v, u) with u fastest when flattened —
        # matching the point layout above for every axis choice.
        out.point_data.add(DataArray(name, sliced.reshape(-1)))
    return out


class SliceFilter(Filter):
    """Pipeline form: grid in, axis-aligned slice :class:`PolyData` out."""

    def __init__(self, axis: int | str = "z", coordinate: float = 0.0,
                 array_names: list[str] | None = None):
        super().__init__()
        self._axis = _AXES.get(axis, axis) if isinstance(axis, str) else axis
        if self._axis not in (0, 1, 2):
            raise FilterError(f"invalid axis {axis!r}")
        self._coordinate = float(coordinate)
        self._array_names = list(array_names) if array_names is not None else None

    def set_plane(self, axis: int | str, coordinate: float) -> None:
        self._axis = _AXES.get(axis, axis) if isinstance(axis, str) else axis
        if self._axis not in (0, 1, 2):
            raise FilterError(f"invalid axis {axis!r}")
        self._coordinate = float(coordinate)
        self.modified()

    @property
    def axis(self) -> int:
        return self._axis

    @property
    def coordinate(self) -> float:
        return self._coordinate

    def _execute(self, grid) -> PolyData:
        from repro.filters.contour import STRUCTURED_GRID_TYPES

        if not isinstance(grid, STRUCTURED_GRID_TYPES):
            raise FilterError(
                f"SliceFilter expects a UniformGrid or RectilinearGrid, "
                f"got {type(grid).__name__}"
            )
        return slice_grid(grid, self._axis, self._coordinate, self._array_names)
