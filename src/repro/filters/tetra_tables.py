"""Lookup tables for tetrahedral contouring of uniform grids.

Voxels are decomposed into the six Kuhn tetrahedra around the main diagonal
``(0,0,0) -- (1,1,1)``.  This decomposition is consistent across adjacent
voxels (shared faces receive the same diagonal from both sides), so the
extracted isosurface is watertight.

Cell corners are numbered ``c = i + 2*j + 4*k`` for offsets
``(i, j, k) in {0,1}^3``, i.e. x varies fastest, matching the grid's point
id convention.

The per-tetrahedron case table is *generated* rather than transcribed: with
only 16 cases the correct triangulation is derivable from first principles
(one triangle when one vertex is separated, a quad split into two triangles
when two are), which removes the transcription-error risk of the classic
256-entry marching-cubes tables.
"""

from __future__ import annotations

__all__ = [
    "CORNER_OFFSETS",
    "KUHN_TETS",
    "TET_EDGES",
    "TET_CASES",
    "edge_id",
]

#: (di, dj, dk) lattice offset of each cell corner.
CORNER_OFFSETS: tuple[tuple[int, int, int], ...] = tuple(
    (c & 1, (c >> 1) & 1, (c >> 2) & 1) for c in range(8)
)

#: The six Kuhn tetrahedra as 4-tuples of cell corner ids.  Each is
#: ``{0, e_a, e_a+e_b, 7}`` for a permutation (a, b, c) of the axes, where
#: e_x=1, e_y=2, e_z=4 in corner-id space.
KUHN_TETS: tuple[tuple[int, int, int, int], ...] = (
    (0, 1, 3, 7),  # x, y, z
    (0, 1, 5, 7),  # x, z, y
    (0, 2, 3, 7),  # y, x, z
    (0, 2, 6, 7),  # y, z, x
    (0, 4, 5, 7),  # z, x, y
    (0, 4, 6, 7),  # z, y, x
)

#: The 6 edges of a tetrahedron as (slot_a, slot_b) pairs, slot_a < slot_b.
TET_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 2),
    (1, 3),
    (2, 3),
)

_EDGE_ID = {pair: idx for idx, pair in enumerate(TET_EDGES)}


def edge_id(a: int, b: int) -> int:
    """Edge index of the tet edge between vertex slots ``a`` and ``b``."""
    return _EDGE_ID[(a, b) if a < b else (b, a)]


def _build_tet_cases() -> tuple[tuple[tuple[int, int, int], ...], ...]:
    """Triangles (as triples of tet-edge ids) for each of the 16 cases.

    Case bit ``s`` is set when tet vertex slot ``s`` classifies inside
    (value >= contour value).
    """
    cases: list[tuple[tuple[int, int, int], ...]] = []
    for case in range(16):
        inside = [s for s in range(4) if case >> s & 1]
        outside = [s for s in range(4) if not case >> s & 1]
        if len(inside) in (1, 3):
            # One vertex separated from the other three: a single triangle
            # on the three edges incident to the separated vertex.
            lone = inside[0] if len(inside) == 1 else outside[0]
            others = [s for s in range(4) if s != lone]
            tris = (
                (
                    edge_id(lone, others[0]),
                    edge_id(lone, others[1]),
                    edge_id(lone, others[2]),
                ),
            )
        elif len(inside) == 2:
            # Two-and-two split: the isosurface cuts a quad whose cycle
            # alternates shared vertices (s0, t1, s1, t0), split into two
            # triangles along one diagonal.
            s0, s1 = inside
            t0, t1 = outside
            q = (
                edge_id(s0, t0),
                edge_id(s0, t1),
                edge_id(s1, t1),
                edge_id(s1, t0),
            )
            tris = ((q[0], q[1], q[2]), (q[0], q[2], q[3]))
        else:
            tris = ()
        cases.append(tris)
    return tuple(cases)


#: TET_CASES[case] -> tuple of triangles, each a triple of tet-edge ids.
TET_CASES: tuple[tuple[tuple[int, int, int], ...], ...] = _build_tet_cases()
