"""Vectorized marching tetrahedra: 3-D isosurfaces over uniform grids.

The library's 3-D contour kernel.  VTK's image-data contour uses
synchronized templates / marching cubes; marching tetrahedra produces an
equivalent (watertight, linearly interpolated) isosurface with a small,
programmatically generated case table — see :mod:`repro.filters.tetra_tables`
for why that trade was made.  The paper's data-reduction analysis depends
only on which lattice edges cross the contour value, which is identical for
both algorithms.

The kernel optionally takes a *cell mask*; masked-out cells are skipped.
This is how the post-filter contours a sparse reconstruction: only cells
whose eight corners were all transferred are processed, which (together
with cell-closure selection) makes the result bit-identical to contouring
the full array (DESIGN.md §5 invariant 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.filters.tetra_tables import CORNER_OFFSETS, KUHN_TETS, TET_CASES, TET_EDGES

__all__ = ["marching_tetrahedra"]


def _resolve_axes(axes, dims_xyz, origin, spacing):
    """Per-axis float64 coordinate arrays for a (possibly uniform) lattice."""
    if axes is None:
        return tuple(
            float(origin[a]) + float(spacing[a]) * np.arange(dims_xyz[a])
            for a in range(3)
        )
    resolved = []
    for a, name in enumerate("xyz"):
        arr = np.ascontiguousarray(axes[a], dtype=np.float64)
        if arr.ndim != 1 or arr.size != dims_xyz[a]:
            raise FilterError(
                f"{name} axis has {arr.size} coordinates; field needs {dims_xyz[a]}"
            )
        resolved.append(arr)
    return tuple(resolved)


def _corner_views(f: np.ndarray) -> list[np.ndarray]:
    """Eight (nz-1, ny-1, nx-1) views giving each cell's corner values."""
    nz, ny, nx = f.shape
    views = []
    for di, dj, dk in CORNER_OFFSETS:
        views.append(f[dk : dk + nz - 1, dj : dj + ny - 1, di : di + nx - 1])
    return views


def marching_tetrahedra(
    field: np.ndarray,
    value: float,
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
    cell_mask: np.ndarray | None = None,
    axes=None,
) -> np.ndarray:
    """Extract the isosurface of a 3-D scalar field at ``value``.

    Parameters
    ----------
    field:
        ``(nz, ny, nx)`` scalar array.
    value:
        Contour value; points with ``field >= value`` classify inside.
    origin, spacing:
        World placement of a *uniform* lattice (x, y, z order); ignored
        when ``axes`` is given.
    cell_mask:
        Optional ``(nz-1, ny-1, nx-1)`` boolean array; False cells are
        skipped.
    axes:
        Optional ``(x_coords, y_coords, z_coords)`` for rectilinear
        lattices; lengths must match the field's (nx, ny, nz).

    Returns
    -------
    triangles : ndarray
        ``(n, 3, 3)`` float64 triangle soup: ``triangles[t, vertex, xyz]``.
    """
    field = np.asarray(field)
    if field.ndim != 3 or min(field.shape) < 2:
        raise FilterError(
            f"field must be (nz>=2, ny>=2, nx>=2); got shape {field.shape}"
        )
    f = field.astype(np.float64, copy=False)
    value = float(value)

    corner_vals_full = _corner_views(f)
    inside_full = [cv >= value for cv in corner_vals_full]

    # Active cells: mixed corner classification (and allowed by the mask).
    any_inside = inside_full[0].copy()
    all_inside = inside_full[0].copy()
    for ins in inside_full[1:]:
        any_inside |= ins
        all_inside &= ins
    active = any_inside & ~all_inside
    if cell_mask is not None:
        cell_mask = np.asarray(cell_mask, dtype=bool)
        if cell_mask.shape != active.shape:
            raise FilterError(
                f"cell_mask shape {cell_mask.shape} != cells shape {active.shape}"
            )
        active &= cell_mask

    kz, jy, ix = np.nonzero(active)
    nact = kz.size
    if nact == 0:
        return np.zeros((0, 3, 3), dtype=np.float64)

    # Corner values and inside flags per active cell: shape (8, nact).
    vals = np.empty((8, nact), dtype=np.float64)
    for c in range(8):
        vals[c] = corner_vals_full[c][kz, jy, ix]
    inside = vals >= value

    # Per-axis lattice coordinates: a uniform grid is just the arithmetic
    # progression; rectilinear grids pass theirs directly.  One code path
    # keeps uniform and rectilinear contouring bit-consistent.
    nz, ny, nx = f.shape
    xs, ys, zs = _resolve_axes(axes, (nx, ny, nz), origin, spacing)

    def corner_coords(c: int, sel: np.ndarray) -> np.ndarray:
        di, dj, dk = CORNER_OFFSETS[c]
        return np.stack(
            [
                xs[ix[sel] + di],
                ys[jy[sel] + dj],
                zs[kz[sel] + dk],
            ],
            axis=1,
        )

    tri_chunks: list[np.ndarray] = []

    for tet in KUHN_TETS:
        # 4-bit case per active cell for this tetrahedron.
        tcase = (
            inside[tet[0]].astype(np.uint8)
            | (inside[tet[1]].astype(np.uint8) << 1)
            | (inside[tet[2]].astype(np.uint8) << 2)
            | (inside[tet[3]].astype(np.uint8) << 3)
        )
        for case in range(1, 15):
            tris = TET_CASES[case]
            if not tris:
                continue
            sel = np.nonzero(tcase == case)[0]
            if sel.size == 0:
                continue
            # Interpolate the crossing point on each tet edge this case uses.
            needed_edges = sorted({e for tri in tris for e in tri})
            edge_pts: dict[int, np.ndarray] = {}
            for e in needed_edges:
                sa, sb = TET_EDGES[e]
                ca, cb = tet[sa], tet[sb]
                va = vals[ca][sel]
                vb = vals[cb][sel]
                denom = vb - va
                t = np.where(
                    denom != 0.0,
                    (value - va) / np.where(denom == 0.0, 1.0, denom),
                    0.5,
                )
                t = np.clip(t, 0.0, 1.0)[:, None]
                pa = corner_coords(ca, sel)
                pb = corner_coords(cb, sel)
                edge_pts[e] = pa + t * (pb - pa)
            for tri in tris:
                tri_chunks.append(
                    np.stack([edge_pts[tri[0]], edge_pts[tri[1]], edge_pts[tri[2]]], axis=1)
                )

    if not tri_chunks:
        return np.zeros((0, 3, 3), dtype=np.float64)
    return np.concatenate(tri_chunks, axis=0)
