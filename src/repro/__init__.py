"""repro: near-data processing for scientific visualization pipelines.

A from-scratch, pure-Python reproduction of *"Accelerating Viz Pipelines
Using Near-Data Computing: An Early Experience"* (Zheng et al., SC 2024):
a VTK-like pipeline engine whose contour filter can be split into a
storage-side **pre-filter** (selects only the mesh points the contour
needs) and a client-side **post-filter** (rebuilds the identical contour
from that sparse selection), connected by a MessagePack RPC layer, over a
MinIO/s3fs-like storage substrate with GZip/LZ4 compression.

Quickstart::

    import numpy as np
    from repro import UniformGrid, DataArray, ContourFilter
    from repro.pipeline import TrivialProducer

    grid = UniformGrid((64, 64, 64))
    zz, yy, xx = np.meshgrid(*(np.arange(64),) * 3, indexing="ij")
    grid.point_data.add(
        DataArray("r", np.hypot(np.hypot(xx - 32, yy - 32), zz - 32).ravel())
    )

    contour = ContourFilter("r", [16.0])
    contour.set_input_connection(0, TrivialProducer(grid))
    surface = contour.output()          # PolyData triangle soup

See ``examples/`` for the NDP offload path and the paper's workloads.
"""

from repro.core import (
    ContourPostFilter,
    ContourPreFilter,
    NDPContourSource,
    NDPServer,
    ndp_contour,
    postfilter_contour,
    prefilter_contour,
    split_contour_filter,
)
from repro.errors import ReproError
from repro.filters import ContourFilter, contour_grid
from repro.grid import DataArray, PointSelection, PolyData, RectilinearGrid, UniformGrid
from repro.io import GridReader, GridWriter, read_vgf, write_vgf

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "UniformGrid",
    "RectilinearGrid",
    "DataArray",
    "PolyData",
    "PointSelection",
    "ContourFilter",
    "contour_grid",
    "prefilter_contour",
    "postfilter_contour",
    "ContourPreFilter",
    "ContourPostFilter",
    "split_contour_filter",
    "NDPServer",
    "NDPContourSource",
    "ndp_contour",
    "read_vgf",
    "write_vgf",
    "GridReader",
    "GridWriter",
]
