"""Axis-aligned block partitioning of structured grids.

The scale-out story (paper Sec. VII; SkimROOT's many-data-server fan-out)
starts here: a uniform or rectilinear grid is cut into ``A x B x C``
axis-aligned blocks along *cell* boundaries.  Neighbouring blocks share
exactly one lattice plane of points — the **ghost layer** — so every
block carries the full cell closure of the cells it owns:

* **cells partition**: each grid cell belongs to exactly one block (the
  block whose per-axis cell range contains it), so no cell is classified
  or emitted twice;
* **seam points replicate**: the shared boundary plane of points appears
  in both neighbours (with identical values), which is what lets each
  shard run the storage-side pre-filter on its block alone and still
  produce the complete closure of its own active cells.

:func:`partition_grid` computes the block layout, :func:`extract_block`
materializes one block as a standalone grid (with shifted origin or
sliced axes, so world coordinates are preserved), and
:func:`block_bounds` gives a block's world-space extent for ROI
intersection tests.  :mod:`repro.cluster.stitch` is the inverse: it maps
block-local selections back into the global lattice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GridError
from repro.grid.bounds import Bounds
from repro.grid.rectilinear import RectilinearGrid
from repro.grid.uniform import UniformGrid

__all__ = ["BlockSpec", "partition_grid", "extract_block", "block_bounds", "axis_cuts"]


@dataclass(frozen=True)
class BlockSpec:
    """One block of a partitioned grid.

    ``lo``/``hi`` are **inclusive** per-axis point indices into the
    global lattice; the block's own cells are ``[lo, hi - 1]`` per
    non-degenerate axis, and its ``hi`` plane along each interior seam is
    the ghost layer shared with the next block.
    """

    index: int
    ijk: tuple[int, int, int]  # block coordinates within the A x B x C layout
    lo: tuple[int, int, int]
    hi: tuple[int, int, int]

    @property
    def dims(self) -> tuple[int, int, int]:
        """Points per axis of the block grid."""
        return tuple(h - l + 1 for l, h in zip(self.lo, self.hi))

    @property
    def num_points(self) -> int:
        nx, ny, nz = self.dims
        return nx * ny * nz

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "ijk": list(self.ijk),
            "lo": list(self.lo),
            "hi": list(self.hi),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BlockSpec":
        return cls(
            int(d["index"]),
            tuple(int(v) for v in d["ijk"]),
            tuple(int(v) for v in d["lo"]),
            tuple(int(v) for v in d["hi"]),
        )


def axis_cuts(n_points: int, n_blocks: int) -> list[int]:
    """Boundary point indices ``p_0 < ... < p_B`` splitting one axis.

    Block ``k`` covers points ``[p_k, p_{k+1}]`` inclusive (so adjacent
    blocks share the plane at ``p_{k+1}``) and owns cells
    ``[p_k, p_{k+1} - 1]``.  Cuts are spread as evenly as the cell count
    allows.  A degenerate axis (one point, as in 2-D grids) only admits a
    single block.
    """
    if n_blocks < 1:
        raise GridError(f"block count must be >= 1, got {n_blocks}")
    if n_points == 1:
        if n_blocks != 1:
            raise GridError(
                f"axis with a single point cannot be split into {n_blocks} blocks"
            )
        return [0, 0]
    cells = n_points - 1
    if n_blocks > cells:
        raise GridError(
            f"cannot split {cells} cell(s) into {n_blocks} blocks "
            f"(each block needs at least one cell per axis)"
        )
    return [round(k * cells / n_blocks) for k in range(n_blocks + 1)]


def partition_grid(dims, blocks) -> list[BlockSpec]:
    """Split a grid's point lattice into ``A x B x C`` blocks.

    Returns the blocks in x-fastest order (matching flat point-id
    order), each with inclusive global point extents.
    """
    dims = tuple(int(d) for d in dims)
    blocks = tuple(int(b) for b in blocks)
    if len(dims) != 3 or len(blocks) != 3:
        raise GridError("dims and blocks must each have 3 entries")
    cuts = [axis_cuts(d, b) for d, b in zip(dims, blocks)]
    specs = []
    index = 0
    for bk in range(blocks[2]):
        for bj in range(blocks[1]):
            for bi in range(blocks[0]):
                b_ijk = (bi, bj, bk)
                lo = tuple(cuts[a][b_ijk[a]] for a in range(3))
                hi = tuple(
                    max(cuts[a][b_ijk[a] + 1], cuts[a][b_ijk[a]])
                    for a in range(3)
                )
                specs.append(BlockSpec(index, b_ijk, lo, hi))
                index += 1
    return specs


def block_bounds(spec: BlockSpec, origin, spacing, axes=None) -> Bounds:
    """World-space extent of a block (for ROI intersection tests).

    ``axes`` (three coordinate arrays) describes a rectilinear parent;
    otherwise ``origin``/``spacing`` describe a uniform one.
    """
    if axes is not None:
        lo = [float(np.asarray(axes[a])[spec.lo[a]]) for a in range(3)]
        hi = [float(np.asarray(axes[a])[spec.hi[a]]) for a in range(3)]
    else:
        lo = [origin[a] + spec.lo[a] * spacing[a] for a in range(3)]
        hi = [origin[a] + spec.hi[a] * spacing[a] for a in range(3)]
    return Bounds(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])


def extract_block(grid, spec: BlockSpec):
    """Materialize one block as a standalone grid.

    The block keeps its world placement: a uniform parent yields a
    uniform block with a shifted origin, a rectilinear parent yields a
    rectilinear block with sliced axes.  Point arrays are sliced and
    copied; cell arrays are not carried (the NDP pipeline operates on
    point data).
    """
    if any(
        spec.lo[a] < 0 or spec.hi[a] > grid.dims[a] - 1 for a in range(3)
    ):
        raise GridError(
            f"block extents {spec.lo}..{spec.hi} exceed grid dims {grid.dims}"
        )
    axes = getattr(grid, "axes", None)
    if axes is not None:
        sub = RectilinearGrid(
            *(np.asarray(axes[a])[spec.lo[a]: spec.hi[a] + 1] for a in range(3))
        )
    else:
        origin = tuple(
            grid.origin[a] + spec.lo[a] * grid.spacing[a] for a in range(3)
        )
        sub = UniformGrid(spec.dims, origin, grid.spacing)
    from repro.grid.array import DataArray  # local import: avoid cycle

    nx, ny, nz = grid.dims
    (li, lj, lk), (hi_, hj, hk) = spec.lo, spec.hi
    for arr in grid.point_data:
        field = arr.values.reshape(nz, ny, nx, arr.components)
        sliced = field[lk: hk + 1, lj: hj + 1, li: hi_ + 1, :]
        sub.point_data.add(
            DataArray(arr.name, np.ascontiguousarray(sliced).reshape(-1),
                      components=arr.components)
        )
    return sub
