"""Seam-exact stitching of per-block pre-filter selections.

The key observation that makes the sharded pipeline **bit-identical** to
the monolithic one: stitching happens at the *selection* level, before
any geometry exists.  Concatenating per-block contour geometry could
never match the single-server output byte-for-byte — marching
tetrahedra emits triangles in (tetrahedron, case, cell) order, not cell
order — so instead each shard returns its block's sparse
:class:`~repro.grid.selection.PointSelection`, the stitcher translates
block-local point ids into the global lattice and unions them, and the
client runs the stock post-filter **once** on the stitched selection.

Why the union equals the monolithic selection exactly (cell-closure
mode): cells partition across blocks, and a block carries its cells'
full closure (the seam ghost layer), so every cell is classified by
exactly one block against the *same* corner values and the *same*
world-coordinate ROI mask as in the monolithic scan.  Per-cell closures
translate to the same global points; their union over all blocks is the
monolithic closure.  Seam-plane points selected by both neighbours are
the deterministic ghost-ownership case: values are identical on both
sides, and :meth:`~repro.grid.selection.PointSelection.union` keeps the
first occurrence — blocks are folded in ascending block-index order, so
the lower-indexed block owns every seam point it selected.

Identical selection + identical post-filter = identical bytes out.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SelectionError
from repro.grid.selection import PointSelection

__all__ = ["rebase_block_selection", "stitch_selections", "empty_selection"]


def rebase_block_selection(selection: PointSelection, spec, dims, origin,
                           spacing, axes=None) -> PointSelection:
    """Translate one block's selection into the global lattice.

    ``spec`` is the :class:`~repro.cluster.partition.BlockSpec` the
    selection came from; ``dims``/``origin``/``spacing``/``axes``
    describe the global grid.
    """
    if tuple(selection.dims) != tuple(spec.dims):
        raise SelectionError(
            f"selection dims {selection.dims} do not match block "
            f"{spec.index} dims {spec.dims}"
        )
    return selection.rebase(dims, spec.lo, origin=origin, spacing=spacing,
                            axes=axes)


def empty_selection(dims, origin, spacing, array_name: str, value_dtype,
                    axes=None) -> PointSelection:
    """A zero-point selection with the global structure.

    The post-filter of an empty selection yields empty geometry with the
    same array layout as the monolithic path, so an ROI that intersects
    no block still returns bit-identical output.
    """
    return PointSelection(
        dims, origin, spacing, array_name,
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.dtype(value_dtype)),
        axes=axes,
    )


def stitch_selections(block_selections, dims, origin, spacing, array_name: str,
                      value_dtype, axes=None) -> PointSelection:
    """Union per-block selections into one global-structure selection.

    ``block_selections`` is an iterable of ``(spec, selection)`` pairs;
    order does not matter — blocks are folded in ascending block index so
    seam deduplication is deterministic regardless of gather order.

    Each block index may appear at most once.  With replicated serving a
    block has several eligible sources, and a gather bug that lets two
    replicas both deliver the same block would silently survive the
    union (identical selections) right up until the day the copies
    disagree — so duplication is rejected loudly here instead.
    """
    pairs = sorted(block_selections, key=lambda pair: pair[0].index)
    for prev, cur in zip(pairs, pairs[1:]):
        if prev[0].index == cur[0].index:
            raise SelectionError(
                f"block {cur[0].index} delivered more than once to the "
                f"stitcher (replica gather must pick exactly one source "
                f"per block)"
            )
    stitched = empty_selection(dims, origin, spacing, array_name, value_dtype,
                               axes=axes)
    for spec, selection in pairs:
        rebased = rebase_block_selection(selection, spec, dims, origin,
                                         spacing, axes=axes)
        stitched = stitched.union(rebased)
    return stitched
