"""Scatter–gather contouring against a sharded NDP cluster.

:class:`ClusterClient` is the cluster-side twin of
:func:`repro.core.ndp_client.ndp_contour`: it fans the storage-side
pre-filter out to every shard owning a block that intersects the contour
ROI (in parallel, one worker per shard so each endpoint sees its blocks
in order), gathers the per-block sparse selections, stitches them into
one global-structure selection (:mod:`repro.cluster.stitch` — the
bit-identity argument lives there), and runs the stock post-filter once.

Failure handling composes with the existing resilience stack.  Each
endpoint sits behind its own :class:`~repro.rpc.resilience.ResilientTransport`
(via :class:`~repro.rpc.pool.EndpointPool`), so retries, deadlines, and
overload sheds are handled per shard before the cluster layer ever sees
an error.  When a shard is exhausted — transport dead, circuit open, or
a reply that fails its checksum twice — and a ``fallback_fs`` is
configured, only **that shard's** blocks degrade to baseline: the client
reads the block objects itself and runs the pre-filter locally, which
yields the exact selection the shard would have returned, so the final
geometry is unchanged.  Without a fallback filesystem the error
propagates.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.cluster.manifest import ShardManifest
from repro.cluster.stitch import stitch_selections
from repro.core.encoding import decode_selection
from repro.core.prefilter import prefilter_contour
from repro.core.postfilter import postfilter_contour
from repro.errors import (
    CircuitOpenError,
    IntegrityError,
    ReproError,
    RPCTransportError,
)
from repro.filters.contour import normalize_values
from repro.grid.bounds import Bounds
from repro.io.vgf import read_vgf
from repro.obs.flightrec import NULL_RECORDER
from repro.obs.trace import NULL_TRACER

__all__ = ["ClusterClient"]

#: Errors that exhaust a shard and trigger per-shard baseline fallback.
FALLBACK_TRIGGERS = (RPCTransportError, CircuitOpenError, IntegrityError)


class ClusterClient:
    """Fan contour pre-filters out to N shards; stitch the gather.

    Parameters
    ----------
    pool:
        :class:`~repro.rpc.pool.EndpointPool` with exactly
        ``manifest.shards`` endpoints (endpoint ``i`` serves shard ``i``).
    manifest:
        The :class:`~repro.cluster.manifest.ShardManifest` naming every
        block, its extents, and its owning shard.
    fallback_fs:
        Optional filesystem that can read the block objects directly;
        enables per-shard baseline fallback when a shard is down.
    recorder:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`; fallback
        and integrity-retry decisions land in the always-on flight ring
        so a post-hoc dump shows which shard degraded and why.
    """

    def __init__(self, pool, manifest: ShardManifest, fallback_fs=None, *,
                 mode: str = "cell-closure", encoding: str = "auto",
                 wire_codec: str = "lz4", tracer=None, max_workers=None,
                 recorder=None):
        if len(pool) != manifest.shards:
            raise ReproError(
                f"pool has {len(pool)} endpoints but manifest names "
                f"{manifest.shards} shards"
            )
        self.pool = pool
        self.manifest = manifest
        self.fallback_fs = fallback_fs
        self.mode = mode
        self.encoding = encoding
        self.wire_codec = wire_codec
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def _block_prefilter_local(self, bo, array_name, values, roi):
        """Baseline path for one block: read it and pre-filter locally.

        This computes exactly what the shard's pre-filter would have
        returned for this block — same grid slice, same corner values,
        same world-coordinate ROI — so selection-level stitching stays
        bit-identical even on the degraded path.
        """
        with self.fallback_fs.open(bo.key) as fh:
            grid = read_vgf(fh)
        size = self.fallback_fs.size(bo.key)
        selection = prefilter_contour(
            grid, array_name, values, mode=self.mode, roi=roi
        )
        return selection, {"fallback_bytes": size}

    def _shard_worker(self, shard, block_objects, array_name, values, roi,
                      opener):
        """Pre-filter every block owned by one shard; one result per block.

        Returns ``(results, stats)`` where ``results`` is a list of
        ``(spec, PointSelection)`` and ``stats`` aggregates the shard's
        wire accounting.  Raises only when the shard is exhausted *and*
        no fallback filesystem exists.
        """
        client = self.pool.client(shard)
        roi_wire = list(roi.as_tuple()) if roi is not None else None
        results = []
        stats = {
            "wire_bytes": 0, "stored_bytes": 0, "raw_bytes": 0,
            "fallback_blocks": 0, "fallback_bytes": 0, "integrity_retries": 0,
        }
        with opener(shard=shard, blocks=len(block_objects)):
            failed = None
            for bo in block_objects:
                if failed is None:
                    try:
                        selection, st = self._block_prefilter_rpc(
                            client, bo, array_name, values, roi_wire, stats
                        )
                        for k in ("wire_bytes", "stored_bytes", "raw_bytes"):
                            stats[k] += int(st.get(k, 0) or 0)
                        results.append((bo.spec, selection))
                        continue
                    except FALLBACK_TRIGGERS as exc:
                        if self.fallback_fs is None:
                            raise
                        failed = exc
                        self.tracer.add_event(
                            "shard.fallback", shard=shard,
                            reason=type(exc).__name__,
                        )
                        self.recorder.record(
                            "shard.fallback", shard=shard,
                            reason=type(exc).__name__,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                # Shard is exhausted: degrade the rest of its blocks to
                # baseline reads rather than re-running the retry dance
                # per block against a known-dead endpoint.
                selection, st = self._block_prefilter_local(
                    bo, array_name, values, roi
                )
                stats["fallback_blocks"] += 1
                stats["fallback_bytes"] += st["fallback_bytes"]
                results.append((bo.spec, selection))
            if failed is not None:
                stats["fallback_reason"] = (
                    f"{type(failed).__name__}: {failed}"
                )
        return results, stats

    def _block_prefilter_rpc(self, client, bo, array_name, values, roi_wire,
                             stats):
        """One block's pre-filter over RPC, with one integrity re-read."""
        try:
            encoded = client.call(
                "prefilter_contour", bo.key, array_name, list(values),
                self.mode, self.encoding, self.wire_codec, roi_wire,
            )
            selection = decode_selection(encoded)
        except IntegrityError:
            # One immediate re-read: a flipped bit on the wire is
            # transient; a second failure means the shard (or its copy
            # of the block) is bad and the fallback policy takes over.
            stats["integrity_retries"] += 1
            self.tracer.add_event("integrity.retry", key=bo.key)
            self.recorder.record("integrity.retry", key=bo.key)
            encoded = client.call(
                "prefilter_contour", bo.key, array_name, list(values),
                self.mode, self.encoding, self.wire_codec, roi_wire,
            )
            selection = decode_selection(encoded)
        st = encoded.get("stats") or {}
        return selection, {
            "wire_bytes": st.get("wire_bytes", 0),
            "stored_bytes": st.get("stored_bytes", 0),
            "raw_bytes": st.get("raw_bytes", 0),
        }

    # ------------------------------------------------------------------
    def contour(self, array_name: str, values, roi: Bounds | None = None):
        """Scatter–gather contour: returns ``(polydata, stats)``.

        Bit-identical to the monolithic paths for any shard layout: same
        points, same polys, same point-data bytes as both a single-server
        :func:`~repro.core.ndp_client.ndp_contour` and a baseline
        full-read :func:`~repro.filters.contour.contour_grid`.
        """
        values = normalize_values(values)
        m = self.manifest
        array_name = str(array_name)
        value_dtype = m.array_dtype(array_name)
        wanted = m.intersecting(roi)
        by_shard = {}
        for bo in wanted:
            by_shard.setdefault(bo.shard, []).append(bo)
        with self.tracer.span(
            "cluster.contour", array=array_name, shards=m.shards,
            shards_queried=len(by_shard), blocks=len(wanted),
        ):
            gathered = []
            stats = {
                "path": "cluster",
                "shards": m.shards,
                "shards_queried": len(by_shard),
                "blocks": len(wanted),
                "fallback_blocks": 0,
                "fallback_bytes": 0,
                "integrity_retries": 0,
                "wire_bytes": 0,
                "stored_bytes": 0,
                "raw_bytes": 0,
            }
            if by_shard:
                # Span stacks are thread-local: capture the fan-out
                # context on this thread so worker spans join the trace.
                opener = self.tracer.fork("cluster.shard")
                ordered = sorted(by_shard.items())
                with ThreadPoolExecutor(
                    max_workers=self.max_workers or len(ordered)
                ) as pool:
                    futures = [
                        pool.submit(
                            self._shard_worker, shard, blocks, array_name,
                            values, roi, opener,
                        )
                        for shard, blocks in ordered
                    ]
                    for future in futures:
                        results, shard_stats = future.result()
                        gathered.extend(results)
                        for k in (
                            "wire_bytes", "stored_bytes", "raw_bytes",
                            "fallback_blocks", "fallback_bytes",
                            "integrity_retries",
                        ):
                            stats[k] += shard_stats[k]
                        if "fallback_reason" in shard_stats:
                            stats["last_fallback_reason"] = (
                                shard_stats["fallback_reason"]
                            )
            with self.tracer.span("cluster.stitch", blocks=len(gathered)):
                stitched = stitch_selections(
                    gathered, m.dims, m.origin, m.spacing, array_name,
                    value_dtype, axes=m.axes,
                )
            stats["selected_points"] = stitched.count
            stats["total_points"] = stitched.total_points
            with self.tracer.span("postfilter", points=stitched.count):
                polydata = postfilter_contour(stitched, values, roi=roi)
        return polydata, stats

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
