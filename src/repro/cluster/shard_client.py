"""Scatter–gather contouring against a sharded NDP cluster.

:class:`ClusterClient` is the cluster-side twin of
:func:`repro.core.ndp_client.ndp_contour`: it fans the storage-side
pre-filter out to every shard owning a block that intersects the contour
ROI (in parallel, one worker per shard so each endpoint sees its blocks
in order), gathers the per-block sparse selections, stitches them into
one global-structure selection (:mod:`repro.cluster.stitch` — the
bit-identity argument lives there), and runs the stock post-filter once.

Failure handling composes with the existing resilience stack, and with
replication (PR 9) failover is a *fast path*, not a degradation.  Each
block's manifest entry names an ordered replica chain; the client ranks
the chain by live endpoint health (open breakers last, then rolling
latency) and drives it through the pool's
:class:`~repro.rpc.pool.HedgedCall`: the first replica gets the request,
a hedge fires to the next after a latency-quantile delay, and timeouts,
breaker-opens, sheds, and integrity failures fail over down the chain
immediately.  The failover ladder per block is therefore

    retry (inside ResilientTransport) → hedge → next replica → baseline

and the client-side baseline read — fetching the block object and
running the pre-filter locally, which yields the *exact* selection a
shard would have returned, so geometry stays bit-identical — is reached
only when **every** replica of a block is exhausted and a
``fallback_fs`` is configured.  Without a fallback filesystem the error
propagates.

Live shard map: replies carry the serving manifest generation as a
``map_version`` token.  When a reply advertises a newer generation than
the client's manifest and a ``manifest_fs`` is configured, the client
re-fetches and atomically swaps its manifest after the gather — a
``repro rebalance --apply`` propagates to running clients without a
restart.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.cluster.manifest import ShardManifest, load_manifest
from repro.cluster.stitch import stitch_selections
from repro.core.encoding import decode_selection
from repro.core.prefilter import prefilter_contour
from repro.core.postfilter import postfilter_contour
from repro.errors import (
    CircuitOpenError,
    IntegrityError,
    ReproError,
    RPCTransportError,
)
from repro.filters.contour import normalize_values
from repro.grid.bounds import Bounds
from repro.io.vgf import read_vgf
from repro.obs.flightrec import NULL_RECORDER
from repro.obs.trace import NULL_TRACER

__all__ = ["ClusterClient"]

#: Errors that exhaust a replica (and, when the whole chain is exhausted,
#: trigger per-block baseline fallback).
FALLBACK_TRIGGERS = (RPCTransportError, CircuitOpenError, IntegrityError)


class ClusterClient:
    """Fan contour pre-filters out to N shards; stitch the gather.

    Parameters
    ----------
    pool:
        :class:`~repro.rpc.pool.EndpointPool` with at least
        ``manifest.shards`` endpoints (endpoint ``i`` serves shard ``i``).
    manifest:
        The :class:`~repro.cluster.manifest.ShardManifest` naming every
        block, its extents, and its replica chain.
    fallback_fs:
        Optional filesystem that can read the block objects directly;
        enables per-block baseline fallback when a block's whole replica
        chain is down.
    manifest_fs:
        Optional filesystem the manifest itself can be re-read from;
        enables the live shard-map protocol (stale ``map_version`` token
        in a reply → re-fetch + swap, no restart).
    sign_key:
        HMAC key for manifest verification on live re-fetch.
    hedge:
        Enable hedged reads for replicated blocks (default on; single-
        replica chains always use the direct path, so pre-replication
        layouts behave exactly as before).
    hedge_quantile, hedge_floor, hedge_cap:
        Hedge timing model: wait for the endpoint's rolling latency at
        ``hedge_quantile`` (clamped to ``[hedge_floor, hedge_cap]``
        seconds) before racing the next replica.
    recorder:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`; fallback,
        failover, and map-refresh decisions land in the always-on flight
        ring so a post-hoc dump shows which shard degraded and why.
    """

    def __init__(self, pool, manifest: ShardManifest, fallback_fs=None, *,
                 mode: str = "cell-closure", encoding: str = "auto",
                 wire_codec: str = "lz4", tracer=None, max_workers=None,
                 recorder=None, manifest_fs=None, sign_key=None,
                 hedge: bool = True, hedge_quantile: float = 0.95,
                 hedge_floor: float = 0.005, hedge_cap: float = 1.0):
        if len(pool) < manifest.shards:
            raise ReproError(
                f"pool has {len(pool)} endpoints but manifest names "
                f"{manifest.shards} shards"
            )
        self.pool = pool
        self.manifest = manifest
        self.fallback_fs = fallback_fs
        self.manifest_fs = manifest_fs
        self.sign_key = sign_key
        self.mode = mode
        self.encoding = encoding
        self.wire_codec = wire_codec
        self.hedge = hedge
        self.hedge_quantile = hedge_quantile
        self.hedge_floor = hedge_floor
        self.hedge_cap = hedge_cap
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.max_workers = max_workers
        self._map_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _block_prefilter_local(self, bo, array_name, values, roi):
        """Baseline path for one block: read it and pre-filter locally.

        This computes exactly what a shard's pre-filter would have
        returned for this block — same grid slice, same corner values,
        same world-coordinate ROI — so selection-level stitching stays
        bit-identical even on the degraded path.
        """
        with self.fallback_fs.open(bo.key) as fh:
            grid = read_vgf(fh)
        size = self.fallback_fs.size(bo.key)
        selection = prefilter_contour(
            grid, array_name, values, mode=self.mode, roi=roi
        )
        return selection, {"fallback_bytes": size}

    def _rpc_once(self, endpoint, bo, array_name, values, roi_wire,
                  counts, lock, ctx_extra=None):
        """One block's pre-filter over RPC, with one integrity re-read."""
        try:
            encoded = self.pool.call(
                endpoint, "prefilter_contour", bo.key, array_name,
                list(values), self.mode, self.encoding, self.wire_codec,
                roi_wire, ctx_extra=ctx_extra,
            )
            selection = decode_selection(encoded)
        except IntegrityError:
            # One immediate re-read on the *same* replica: a flipped bit
            # on the wire is transient.  A second failure means this copy
            # (or this shard) is bad — the exception escapes and the
            # hedged ladder moves to the next replica.
            with lock:
                counts["integrity_retries"] += 1
            self.tracer.add_event("integrity.retry", key=bo.key)
            self.recorder.record("integrity.retry", key=bo.key,
                                 endpoint=endpoint)
            encoded = self.pool.call(
                endpoint, "prefilter_contour", bo.key, array_name,
                list(values), self.mode, self.encoding, self.wire_codec,
                roi_wire, ctx_extra=ctx_extra,
            )
            selection = decode_selection(encoded)
        version = encoded.get("map_version")
        if version is not None:
            with lock:
                if int(version) > counts["map_version_seen"]:
                    counts["map_version_seen"] = int(version)
        st = encoded.get("stats") or {}
        return selection, {
            "wire_bytes": st.get("wire_bytes", 0),
            "stored_bytes": st.get("stored_bytes", 0),
            "raw_bytes": st.get("raw_bytes", 0),
        }

    def _block_prefilter_replicated(self, chain, bo, array_name, values,
                                    roi_wire, counts, lock, stats):
        """Drive one block through its (ranked, live) replica chain."""
        if len(chain) == 1 or not self.hedge:
            # Single live replica (or hedging off): the classic direct
            # path — no extra thread, byte-for-byte the old behaviour.
            return self._rpc_once(
                chain[0], bo, array_name, values, roi_wire, counts, lock,
            ) + ({"winner": chain[0], "losers": []},)
        hedged = self.pool.hedged(
            self.hedge_quantile, self.hedge_floor, self.hedge_cap
        )

        def attempt(endpoint, cancel, kind):
            ctx_extra = None
            if kind == "hedge":
                ctx_extra = {"hedge": True}
            elif kind == "failover":
                ctx_extra = {"failover": True}
            return self._rpc_once(
                endpoint, bo, array_name, values, roi_wire, counts, lock,
                ctx_extra=ctx_extra,
            )

        result = hedged.run(chain, attempt)
        selection, wire_stats = result.value
        with lock:
            stats["hedges"] += result.hedges
            stats["failovers"] += result.failovers
            if result.winner_kind == "hedge":
                stats["hedge_wins"] += 1
                self.pool.health(result.winner).record_hedge_win()
            if result.winner != chain[0]:
                stats["failover_blocks"] += 1
        return selection, wire_stats, {
            "winner": result.winner,
            "losers": [endpoint for endpoint, _ in result.errors],
        }

    def _shard_worker(self, leader, items, array_name, values, roi, opener):
        """Pre-filter every block led by one endpoint; one result per block.

        ``items`` is ``[(BlockObject, ranked_chain), ...]``.  Returns
        ``(results, stats)`` where ``results`` is a list of ``(spec,
        PointSelection)`` and ``stats`` aggregates the group's wire and
        failover accounting.  Raises only when a block's whole chain is
        exhausted *and* no fallback filesystem exists.
        """
        roi_wire = list(roi.as_tuple()) if roi is not None else None
        results = []
        lock = threading.Lock()
        counts = {"integrity_retries": 0, "map_version_seen": 0}
        stats = {
            "wire_bytes": 0, "stored_bytes": 0, "raw_bytes": 0,
            "fallback_blocks": 0, "fallback_bytes": 0,
            "hedges": 0, "hedge_wins": 0, "failovers": 0,
            "failover_blocks": 0,
        }
        with opener(shard=leader, blocks=len(items)):
            dead: set[int] = set()
            last_failure = None
            for bo, chain in items:
                # Replicas already exhausted this scatter are skipped —
                # no retry dance against known-dead endpoints.  ``dead``
                # only fills when a fallback_fs exists (without one the
                # first exhausted chain raises out of the worker).
                live = [e for e in chain if e not in dead]
                if live:
                    try:
                        selection, st, _route = (
                            self._block_prefilter_replicated(
                                live, bo, array_name, values, roi_wire,
                                counts, lock, stats,
                            )
                        )
                        for k in ("wire_bytes", "stored_bytes", "raw_bytes"):
                            stats[k] += int(st.get(k, 0) or 0)
                        results.append((bo.spec, selection))
                        continue
                    except FALLBACK_TRIGGERS as exc:
                        if self.fallback_fs is None:
                            raise
                        last_failure = exc
                        dead.update(live)
                        self.tracer.add_event(
                            "shard.fallback", shard=leader,
                            reason=type(exc).__name__,
                        )
                        self.recorder.record(
                            "shard.fallback", shard=leader,
                            block=bo.key, replicas=list(chain),
                            reason=type(exc).__name__,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                selection, st = self._block_prefilter_local(
                    bo, array_name, values, roi
                )
                stats["fallback_blocks"] += 1
                stats["fallback_bytes"] += st["fallback_bytes"]
                results.append((bo.spec, selection))
            if last_failure is not None:
                stats["fallback_reason"] = (
                    f"{type(last_failure).__name__}: {last_failure}"
                )
        stats["integrity_retries"] = counts["integrity_retries"]
        stats["map_version_seen"] = counts["map_version_seen"]
        return results, stats

    # ------------------------------------------------------------------
    def _route(self, wanted):
        """Group blocks by the lead endpoint of their ranked chains."""
        groups: dict[int, list] = {}
        for bo in wanted:
            chain = list(bo.replicas)
            if self.hedge and len(chain) > 1:
                chain = self.pool.rank(chain)
            groups.setdefault(chain[0], []).append((bo, chain))
        return groups

    def prefilter(self, array_name: str, values, roi: Bounds | None = None,
                  _span_name: str = "cluster.contour"):
        """Scatter–gather the pre-filter only: ``(selection, stats)``.

        Everything :meth:`contour` does short of the client-side
        post-filter: route blocks to shard leaders, gather the per-block
        encoded selections, stitch them into one global sparse
        :class:`~repro.filters.selection.PointSelection`.  The edge cache
        tier fronts a cluster through this — it re-encodes the stitched
        selection for its own clients and leaves post-filtering to them,
        keeping the pushdown semantics intact across all three tiers.
        """
        values = normalize_values(values)
        m = self.manifest
        array_name = str(array_name)
        value_dtype = m.array_dtype(array_name)
        wanted = m.intersecting(roi)
        groups = self._route(wanted)
        with self.tracer.span(
            _span_name, array=array_name, shards=m.shards,
            shards_queried=len(groups), blocks=len(wanted),
        ):
            gathered = []
            stats = {
                "path": "cluster",
                "shards": m.shards,
                "shards_queried": len(groups),
                "blocks": len(wanted),
                "replicas": m.replication_factor,
                "map_version": m.map_version,
                "fallback_blocks": 0,
                "fallback_bytes": 0,
                "integrity_retries": 0,
                "wire_bytes": 0,
                "stored_bytes": 0,
                "raw_bytes": 0,
                "hedges": 0,
                "hedge_wins": 0,
                "failovers": 0,
                "failover_blocks": 0,
            }
            map_version_seen = 0
            if groups:
                # Span stacks are thread-local: capture the fan-out
                # context on this thread so worker spans join the trace.
                opener = self.tracer.fork("cluster.shard")
                ordered = sorted(groups.items())
                with ThreadPoolExecutor(
                    max_workers=self.max_workers or len(ordered)
                ) as pool:
                    futures = [
                        pool.submit(
                            self._shard_worker, leader, items, array_name,
                            values, roi, opener,
                        )
                        for leader, items in ordered
                    ]
                    for future in futures:
                        results, shard_stats = future.result()
                        gathered.extend(results)
                        for k in (
                            "wire_bytes", "stored_bytes", "raw_bytes",
                            "fallback_blocks", "fallback_bytes",
                            "integrity_retries", "hedges", "hedge_wins",
                            "failovers", "failover_blocks",
                        ):
                            stats[k] += shard_stats[k]
                        map_version_seen = max(
                            map_version_seen,
                            shard_stats.get("map_version_seen", 0),
                        )
                        if "fallback_reason" in shard_stats:
                            stats["last_fallback_reason"] = (
                                shard_stats["fallback_reason"]
                            )
            with self.tracer.span("cluster.stitch", blocks=len(gathered)):
                stitched = stitch_selections(
                    gathered, m.dims, m.origin, m.spacing, array_name,
                    value_dtype, axes=m.axes,
                )
            stats["selected_points"] = stitched.count
            stats["total_points"] = stitched.total_points
            if map_version_seen > m.map_version:
                # A shard is serving a newer map than we routed with:
                # this gather already completed correctly (replies are
                # self-describing), so refresh for the *next* request.
                stats["stale_map"] = True
                stats["map_refreshed"] = self.refresh_map()
        return stitched, stats

    def contour(self, array_name: str, values, roi: Bounds | None = None):
        """Scatter–gather contour: returns ``(polydata, stats)``.

        Bit-identical to the monolithic paths for any shard layout, any
        replication factor, and any failover combination: same points,
        same polys, same point-data bytes as both a single-server
        :func:`~repro.core.ndp_client.ndp_contour` and a baseline
        full-read :func:`~repro.filters.contour.contour_grid`.
        """
        values = normalize_values(values)
        stitched, stats = self.prefilter(array_name, values, roi=roi)
        with self.tracer.span("postfilter", points=stitched.count):
            polydata = postfilter_contour(stitched, values, roi=roi)
        return polydata, stats

    # ------------------------------------------------------------------
    def refresh_map(self) -> bool:
        """Re-fetch the manifest and swap it in if the generation advanced.

        Returns ``True`` when a newer map was installed.  Requires
        ``manifest_fs``; without one the client keeps serving from its
        (still-correct, possibly suboptimal) map.
        """
        if self.manifest_fs is None:
            return False
        with self._map_lock:
            current = self.manifest
            fresh = load_manifest(
                self.manifest_fs, current.manifest_key,
                sign_key=self.sign_key,
            )
            if fresh.map_version <= current.map_version:
                return False
            if fresh.shards > len(self.pool):
                # Elastic growth: new shards must be dialable.  The
                # manifest may carry their addresses in meta.endpoints.
                endpoints = list((fresh.meta or {}).get("endpoints") or [])
                for addr in endpoints[len(self.pool):fresh.shards]:
                    self.pool.add_address(addr)
                if fresh.shards > len(self.pool):
                    raise ReproError(
                        f"refreshed manifest names {fresh.shards} shards "
                        f"but the pool has only {len(self.pool)} endpoints "
                        f"and no addresses to grow by"
                    )
            self.manifest = fresh
            self.recorder.record(
                "cluster.map_refresh", map_version=fresh.map_version,
            )
            self.tracer.add_event(
                "cluster.map_refresh", map_version=fresh.map_version,
            )
            return True

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
