"""Hot-shard detection and re-replication planning for a live cluster.

The per-endpoint metrics that feed ``repro top`` (request counters and
latency histograms from every shard's ``stats`` endpoint) double as the
input to elasticity: :func:`loads_from_polls` turns one polling round
into per-shard load scores, :func:`plan_rebalance` finds shards running
hot relative to the cluster mean and emits a deterministic
re-replication plan — pad every block's chain to the target replication
factor on the least-loaded shards, then rotate hot primaries onto their
coldest replicas — and :func:`apply_plan` writes the plan back as a new
manifest generation (``map_version + 1``).

Because shards share one object store, a "move" rewrites only the
serving chain in the manifest: no block bytes are copied, and running
servers/clients pick the new map up through the live
``map_version``-token protocol (see
:class:`~repro.cluster.manifest.ManifestWatcher` and
:meth:`~repro.cluster.shard_client.ClusterClient.refresh_map`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.cluster.manifest import ShardManifest, write_manifest
from repro.errors import ReproError

__all__ = [
    "ShardLoad",
    "ReplicaMove",
    "RebalancePlan",
    "loads_from_polls",
    "loads_from_manifest",
    "plan_rebalance",
    "apply_plan",
]


@dataclass(frozen=True)
class ShardLoad:
    """One shard's observed load: a scalar score plus optional latency."""

    shard: int
    score: float
    p99: float = 0.0

    def to_dict(self) -> dict:
        return {"shard": self.shard, "score": self.score, "p99": self.p99}


@dataclass(frozen=True)
class ReplicaMove:
    """One block's chain rewrite: ``before`` → ``after`` (order matters)."""

    block: int
    key: str
    before: tuple[int, ...]
    after: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "block": self.block,
            "key": self.key,
            "before": list(self.before),
            "after": list(self.after),
        }


@dataclass
class RebalancePlan:
    """A deterministic set of chain rewrites against one map generation."""

    manifest_key: str
    map_version: int            # the generation this plan was computed from
    replicas: int               # target chain length
    hot_shards: tuple[int, ...]
    loads: tuple[ShardLoad, ...]
    moves: tuple[ReplicaMove, ...] = field(default_factory=tuple)

    @property
    def empty(self) -> bool:
        return not self.moves

    def to_dict(self) -> dict:
        return {
            "manifest_key": self.manifest_key,
            "map_version": self.map_version,
            "new_map_version": self.map_version + 1,
            "replicas": self.replicas,
            "hot_shards": list(self.hot_shards),
            "loads": [load.to_dict() for load in self.loads],
            "moves": [move.to_dict() for move in self.moves],
        }

    def summary(self) -> list[str]:
        lines = [
            f"manifest {self.manifest_key} @ map_version {self.map_version}"
            f" -> {self.map_version + 1}",
            f"target replicas: {self.replicas}",
            f"hot shards: {list(self.hot_shards) or 'none'}",
        ]
        for load in self.loads:
            mark = " (hot)" if load.shard in self.hot_shards else ""
            lines.append(
                f"  shard {load.shard}: load {load.score:.1f}"
                f"  p99 {load.p99 * 1e3:.1f}ms{mark}"
            )
        if self.empty:
            lines.append("no moves needed")
        for move in self.moves:
            lines.append(
                f"  block {move.block:4d}: {list(move.before)} -> "
                f"{list(move.after)}"
            )
        return lines


# ---------------------------------------------------------------------------
# Load measurement
# ---------------------------------------------------------------------------


def _hist_p99(hist: dict) -> float:
    count = int(hist.get("count", 0))
    if count == 0:
        return 0.0
    rank = 0.99 * count
    seen, last = 0, 0.0
    for bucket in hist.get("buckets", []):
        le = bucket.get("le")
        seen += int(bucket.get("count", 0))
        if le != "+Inf":
            last = float(le)
        if seen >= rank:
            return last if le == "+Inf" else float(le)
    return last


def loads_from_polls(polls) -> dict[int, ShardLoad]:
    """Shard loads from one ``poll_stats`` round (shard ``i`` = poll ``i``).

    Score is the lifetime request counter; an unreachable shard scores
    0.0 — it is not serving, so it is by definition not hot.
    """
    loads = {}
    for shard, poll in enumerate(polls):
        snap = poll.get("snapshot") or {}
        counters = snap.get("counters") or {}
        hists = snap.get("histograms") or {}
        loads[shard] = ShardLoad(
            shard=shard,
            score=float(counters.get("requests", 0)),
            p99=_hist_p99(hists.get("request_latency_seconds") or {}),
        )
    return loads


def loads_from_manifest(manifest: ShardManifest) -> dict[int, ShardLoad]:
    """Structural fallback: primary block count per shard (no polling)."""
    counts = {shard: 0 for shard in range(manifest.shards)}
    for bo in manifest.block_objects:
        counts[bo.shard] += 1
    return {
        shard: ShardLoad(shard=shard, score=float(count))
        for shard, count in counts.items()
    }


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def plan_rebalance(
    manifest: ShardManifest,
    loads: dict[int, ShardLoad] | None = None,
    replicas: int | None = None,
    hot_factor: float = 1.5,
) -> RebalancePlan:
    """Compute a deterministic re-replication plan for one manifest.

    Two passes over the blocks, in index order:

    1. **Pad** every chain to the target replication factor, appending
       the shards with the fewest projected serving assignments (ties
       break toward lower shard ids — determinism over cleverness).
    2. **Cool** hot shards — those whose load exceeds ``hot_factor``
       times the cluster mean — by rotating their primary blocks onto
       each block's least-loaded non-hot replica, until the hot shard
       leads strictly fewer chains than the cluster average.

    The plan is pure data; nothing is written until :func:`apply_plan`.
    """
    if manifest.shards < 1:
        raise ReproError("manifest names no shards")
    if loads is None:
        loads = loads_from_manifest(manifest)
    target = replicas if replicas is not None else manifest.replication_factor
    if not 1 <= target <= manifest.shards:
        raise ReproError(
            f"replica count must be in [1, {manifest.shards}], got {target}"
        )
    scores = {
        shard: loads.get(shard, ShardLoad(shard, 0.0)).score
        for shard in range(manifest.shards)
    }
    mean = sum(scores.values()) / manifest.shards
    hot = tuple(
        shard for shard in range(manifest.shards)
        if mean > 0 and scores[shard] > hot_factor * mean
    )

    # Projected serving assignments (chain memberships) and primary
    # counts, updated as the plan takes shape.
    serving = {shard: 0 for shard in range(manifest.shards)}
    primaries = {shard: 0 for shard in range(manifest.shards)}
    for bo in manifest.block_objects:
        primaries[bo.shard] += 1
        for shard in bo.replicas:
            serving[shard] += 1

    chains: dict[int, tuple[int, ...]] = {}
    for bo in manifest.block_objects:
        chain = list(bo.replicas[:target])
        for dropped in bo.replicas[target:]:
            serving[dropped] -= 1
        while len(chain) < target:
            candidates = sorted(
                (shard for shard in range(manifest.shards)
                 if shard not in chain),
                key=lambda shard: (serving[shard], scores[shard], shard),
            )
            chain.append(candidates[0])
            serving[candidates[0]] += 1
        chains[bo.spec.index] = tuple(chain)

    if target > 1:
        mean_primaries = len(manifest.block_objects) / manifest.shards
        # A hot shard should lead strictly fewer chains than average —
        # its blocks are demonstrably hotter, so equal counts still mean
        # unequal load.
        goal = max(0, math.ceil(mean_primaries) - 1)
        for shard in hot:
            for bo in manifest.block_objects:
                if primaries[shard] <= goal:
                    break
                chain = chains[bo.spec.index]
                if chain[0] != shard or len(chain) < 2:
                    continue
                # Never rotate onto another hotspot (or anything at
                # least as loaded) — that just moves the problem.
                candidates = [
                    s for s in chain[1:]
                    if scores[s] < scores[shard]
                    and (mean <= 0 or scores[s] <= hot_factor * mean)
                ]
                if not candidates:
                    continue
                coolest = min(
                    candidates, key=lambda s: (primaries[s], scores[s], s)
                )
                rotated = (coolest,) + tuple(
                    s for s in chain if s != coolest
                )
                chains[bo.spec.index] = rotated
                primaries[shard] -= 1
                primaries[coolest] += 1

    moves = tuple(
        ReplicaMove(
            block=bo.spec.index, key=bo.key,
            before=bo.replicas, after=chains[bo.spec.index],
        )
        for bo in manifest.block_objects
        if chains[bo.spec.index] != bo.replicas
    )
    return RebalancePlan(
        manifest_key=manifest.manifest_key,
        map_version=manifest.map_version,
        replicas=target,
        hot_shards=hot,
        loads=tuple(
            loads.get(shard, ShardLoad(shard, 0.0))
            for shard in range(manifest.shards)
        ),
        moves=moves,
    )


def apply_plan(fs, manifest: ShardManifest, plan: RebalancePlan,
               sign_key: bytes | None = None) -> ShardManifest:
    """Write the plan as a new manifest generation and return it.

    Refuses a stale plan (one computed against a different
    ``map_version``) — two concurrent rebalancers must not silently
    clobber each other's generation.
    """
    if plan.map_version != manifest.map_version:
        raise ReproError(
            f"stale rebalance plan: computed against map_version "
            f"{plan.map_version}, manifest is at {manifest.map_version}"
        )
    rewrites = {move.block: move.after for move in plan.moves}
    block_objects = tuple(
        replace(
            bo, shard=rewrites[bo.spec.index][0],
            replicas=rewrites[bo.spec.index],
        ) if bo.spec.index in rewrites else bo
        for bo in manifest.block_objects
    )
    fresh = replace(
        manifest,
        block_objects=block_objects,
        map_version=manifest.map_version + 1,
    )
    write_manifest(fs, fresh.manifest_key, fresh, sign_key=sign_key)
    return fresh
