"""Sharded NDP cluster: block partitioning, manifests, scatter–gather.

The paper's single NDP server becomes N independent ones: a grid is cut
into axis-aligned blocks sharing a one-cell ghost layer
(:mod:`repro.cluster.partition`), each block is stored as its own VGF
object under a signed shard manifest (:mod:`repro.cluster.manifest`),
and :class:`~repro.cluster.shard_client.ClusterClient` fans the
pre-filter out to every shard intersecting the request's ROI, stitching
the gathered selections back into one — bit-identical to the monolithic
pipeline (:mod:`repro.cluster.stitch` carries the argument why).
"""

from repro.cluster.manifest import (
    BlockObject,
    ManifestWatcher,
    ShardManifest,
    load_manifest,
    manifest_key_for,
    replica_chain,
    shard_object,
    sign_manifest,
    verify_manifest,
    write_manifest,
)
from repro.cluster.rebalance import (
    RebalancePlan,
    ReplicaMove,
    ShardLoad,
    apply_plan,
    loads_from_manifest,
    loads_from_polls,
    plan_rebalance,
)
from repro.cluster.partition import (
    BlockSpec,
    axis_cuts,
    block_bounds,
    extract_block,
    partition_grid,
)
from repro.cluster.shard_client import ClusterClient
from repro.cluster.stitch import (
    empty_selection,
    rebase_block_selection,
    stitch_selections,
)

__all__ = [
    "BlockSpec",
    "axis_cuts",
    "partition_grid",
    "extract_block",
    "block_bounds",
    "BlockObject",
    "ShardManifest",
    "shard_object",
    "write_manifest",
    "load_manifest",
    "manifest_key_for",
    "sign_manifest",
    "verify_manifest",
    "rebase_block_selection",
    "stitch_selections",
    "empty_selection",
    "ClusterClient",
    "ManifestWatcher",
    "replica_chain",
    "RebalancePlan",
    "ReplicaMove",
    "ShardLoad",
    "plan_rebalance",
    "apply_plan",
    "loads_from_manifest",
    "loads_from_polls",
]
