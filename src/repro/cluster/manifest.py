"""Signed JSON shard manifests: where every block of a dataset lives.

Sharding a VGF object (:func:`shard_object`) writes each block as its
own VGF object — block extents ride in the block's free-form ``meta``
map — plus one JSON *manifest* recording the global grid structure, the
block layout (extents + object key + owning shard), and the shard
count.  The manifest is the unit of discovery: a
:class:`~repro.cluster.shard_client.ClusterClient` needs nothing else to
fan a request out, and :class:`repro.io.catalog.ClusterCatalog` scans a
mount for them the way :class:`~repro.io.catalog.TimestepCatalog` scans
for timesteps.

Manifests are **signed**: a digest over the canonical JSON encoding of
everything except the signature itself — plain SHA-256 by default, or
HMAC-SHA256 when a ``sign_key`` is supplied (placement metadata steers
the client's reads, so a tampered manifest must fail loudly before any
block is fetched).  :func:`load_manifest` verifies before parsing and
raises :class:`~repro.errors.IntegrityError` on mismatch.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.partition import BlockSpec, block_bounds, extract_block, partition_grid
from repro.errors import FormatError, IntegrityError, ReproError
from repro.grid.bounds import Bounds
from repro.io.vgf import read_vgf, write_vgf

__all__ = [
    "BlockObject",
    "ShardManifest",
    "ManifestWatcher",
    "shard_object",
    "replica_chain",
    "write_manifest",
    "load_manifest",
    "sign_manifest",
    "verify_manifest",
    "manifest_key_for",
    "MANIFEST_SUFFIX",
]

MANIFEST_FORMAT = "repro-shard-manifest"
MANIFEST_VERSION = 1
MANIFEST_SUFFIX = ".manifest.json"


@dataclass(frozen=True)
class BlockObject:
    """One stored block: its extents, its object key, its replica chain.

    ``replicas`` is the *ordered* set of shards able to serve this block —
    the first entry is the primary and equals ``shard`` (kept as its own
    field for compatibility with pre-replication manifests).  Clients walk
    the chain in order on failover; re-replication rewrites the chain
    without moving the stored object.
    """

    spec: BlockSpec
    key: str
    shard: int
    replicas: tuple[int, ...] = ()

    def __post_init__(self):
        chain = tuple(int(s) for s in self.replicas) or (int(self.shard),)
        if chain[0] != int(self.shard):
            raise FormatError(
                f"block {self.key!r}: primary shard {self.shard} must lead "
                f"its replica chain {chain}"
            )
        if len(set(chain)) != len(chain):
            raise FormatError(
                f"block {self.key!r}: replica chain {chain} repeats a shard"
            )
        object.__setattr__(self, "replicas", chain)

    def to_dict(self) -> dict:
        return dict(self.spec.to_dict(), key=self.key, shard=self.shard,
                    replicas=list(self.replicas))

    @classmethod
    def from_dict(cls, d: dict) -> "BlockObject":
        shard = int(d["shard"])
        replicas = tuple(int(s) for s in d.get("replicas") or (shard,))
        return cls(BlockSpec.from_dict(d), str(d["key"]), shard, replicas)


@dataclass(frozen=True)
class ShardManifest:
    """Decoded shard manifest: global structure plus block placement.

    ``map_version`` is the *shard-map generation*, distinct from the
    format version in the document envelope: every re-replication or
    placement change writes a new manifest with a strictly larger
    ``map_version``.  Servers stamp the generation they were launched
    with (or currently observe) into replies, so a client holding an
    older map sees the larger token and re-fetches the manifest live —
    no restart, no polling loop on the client.
    """

    dims: tuple[int, int, int]
    origin: tuple[float, float, float]
    spacing: tuple[float, float, float]
    blocks: tuple[int, int, int]          # A x B x C layout
    shards: int
    block_objects: tuple[BlockObject, ...]
    arrays: tuple[tuple[str, str], ...]   # (name, numpy dtype str) pairs
    source_key: str = ""
    manifest_key: str = ""
    axes: tuple | None = None             # rectilinear per-axis coordinates
    meta: dict = field(default_factory=dict)
    map_version: int = 1

    # ------------------------------------------------------------------
    @property
    def array_names(self) -> list[str]:
        return [name for name, _ in self.arrays]

    def array_dtype(self, name: str) -> np.dtype:
        for array_name, dtype in self.arrays:
            if array_name == name:
                return np.dtype(dtype)
        raise ReproError(
            f"no array {name!r} in manifest; available: {self.array_names}"
        )

    def specs(self) -> list[BlockSpec]:
        return [bo.spec for bo in self.block_objects]

    def blocks_for_shard(self, shard: int) -> list[BlockObject]:
        return [bo for bo in self.block_objects if bo.shard == shard]

    def blocks_served_by(self, shard: int) -> list[BlockObject]:
        """Blocks this shard can serve as primary *or* replica."""
        return [bo for bo in self.block_objects if shard in bo.replicas]

    @property
    def replication_factor(self) -> int:
        """Maximum replica-chain length across all blocks (1 = none)."""
        if not self.block_objects:
            return 1
        return max(len(bo.replicas) for bo in self.block_objects)

    def block_world_bounds(self, bo: BlockObject) -> Bounds:
        return block_bounds(bo.spec, self.origin, self.spacing, axes=self.axes)

    def intersecting(self, roi: Bounds | None) -> list[BlockObject]:
        """Blocks whose world extent overlaps ``roi`` (all, when no ROI)."""
        if roi is None:
            return list(self.block_objects)
        return [
            bo for bo in self.block_objects
            if self.block_world_bounds(bo).intersects(roi)
        ]

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        doc = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "dims": list(self.dims),
            "origin": list(self.origin),
            "spacing": list(self.spacing),
            "blocks": list(self.blocks),
            "shards": self.shards,
            "block_objects": [bo.to_dict() for bo in self.block_objects],
            "arrays": [[name, dtype] for name, dtype in self.arrays],
            "source_key": self.source_key,
            "manifest_key": self.manifest_key,
            "meta": self.meta,
            "map_version": int(self.map_version),
        }
        if self.axes is not None:
            doc["axes"] = [[float(v) for v in axis] for axis in self.axes]
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "ShardManifest":
        try:
            if doc.get("format") != MANIFEST_FORMAT:
                raise FormatError(
                    f"not a shard manifest (format={doc.get('format')!r})"
                )
            if int(doc.get("version", 0)) > MANIFEST_VERSION:
                raise FormatError(
                    f"manifest version {doc['version']} is newer than "
                    f"supported {MANIFEST_VERSION}"
                )
            axes = doc.get("axes")
            return cls(
                dims=tuple(int(v) for v in doc["dims"]),
                origin=tuple(float(v) for v in doc["origin"]),
                spacing=tuple(float(v) for v in doc["spacing"]),
                blocks=tuple(int(v) for v in doc["blocks"]),
                shards=int(doc["shards"]),
                block_objects=tuple(
                    BlockObject.from_dict(d) for d in doc["block_objects"]
                ),
                arrays=tuple(
                    (str(name), str(dtype)) for name, dtype in doc["arrays"]
                ),
                source_key=str(doc.get("source_key", "")),
                manifest_key=str(doc.get("manifest_key", "")),
                axes=tuple(
                    np.asarray(axis, dtype=np.float64) for axis in axes
                ) if axes is not None else None,
                meta=dict(doc.get("meta") or {}),
                map_version=int(doc.get("map_version", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"malformed shard manifest: {exc}") from exc


# ---------------------------------------------------------------------------
# Signing
# ---------------------------------------------------------------------------


def _canonical_bytes(doc: dict) -> bytes:
    """Canonical JSON of a manifest document minus its signature."""
    unsigned = {k: v for k, v in doc.items() if k != "signature"}
    return json.dumps(unsigned, sort_keys=True, separators=(",", ":")).encode()


def sign_manifest(doc: dict, sign_key: bytes | None = None) -> dict:
    """Return a copy of ``doc`` carrying its signature.

    SHA-256 content digest by default; HMAC-SHA256 when ``sign_key`` is
    given (then only holders of the key can produce a valid manifest).
    """
    payload = _canonical_bytes(doc)
    if sign_key is not None:
        algo = "hmac-sha256"
        digest = hmac.new(sign_key, payload, hashlib.sha256).hexdigest()
    else:
        algo = "sha256"
        digest = hashlib.sha256(payload).hexdigest()
    return dict(doc, signature={"algo": algo, "digest": digest})


def verify_manifest(doc: dict, sign_key: bytes | None = None) -> None:
    """Check a manifest document's signature; raise on any mismatch."""
    signature = doc.get("signature")
    if not isinstance(signature, dict):
        raise IntegrityError("shard manifest carries no signature")
    algo = signature.get("algo")
    expected = signature.get("digest")
    payload = _canonical_bytes(doc)
    if algo == "sha256":
        actual = hashlib.sha256(payload).hexdigest()
    elif algo == "hmac-sha256":
        if sign_key is None:
            raise IntegrityError(
                "manifest is HMAC-signed but no sign_key was provided"
            )
        actual = hmac.new(sign_key, payload, hashlib.sha256).hexdigest()
    else:
        raise IntegrityError(f"unknown manifest signature algo {algo!r}")
    if not isinstance(expected, str) or not hmac.compare_digest(actual, expected):
        raise IntegrityError("shard manifest signature mismatch")


# ---------------------------------------------------------------------------
# Store I/O
# ---------------------------------------------------------------------------


def manifest_key_for(key: str) -> str:
    """Default manifest key for a source object key."""
    stem = key[:-4] if key.endswith(".vgf") else key
    return stem + MANIFEST_SUFFIX


def _block_key(source_key: str, index: int) -> str:
    stem = source_key[:-4] if source_key.endswith(".vgf") else source_key
    return f"{stem}.blocks/{index:04d}.vgf"


def replica_chain(index: int, shards: int, replicas: int) -> tuple[int, ...]:
    """Default R-way placement: primary plus the next R-1 shards, wrapped.

    Consecutive placement means any dead-shard set smaller than R leaves
    every block at least one live replica — the property the failover
    tests quantify over.
    """
    if not 1 <= replicas <= shards:
        raise ReproError(
            f"replica count must be in [1, {shards}], got {replicas}"
        )
    primary = index % shards
    return tuple((primary + j) % shards for j in range(replicas))


def shard_object(
    fs,
    key: str,
    blocks=(2, 2, 2),
    shards: int | None = None,
    codec: str = "lz4",
    manifest_key: str | None = None,
    sign_key: bytes | None = None,
    replicas: int = 1,
) -> ShardManifest:
    """Partition a stored VGF object into per-block objects + a manifest.

    Blocks are assigned to ``shards`` placement groups round-robin by
    block index (``shards`` defaults to the block count — one shard per
    block).  ``replicas=R`` records an R-entry serving chain per block
    (primary plus the next R-1 shards): shards share one object store,
    so replication is a *serving* assignment — any chain member answers
    the pre-filter for the block — rather than R physical copies.  The
    source object is left in place, so monolithic and sharded access
    coexist over the same store.
    """
    with fs.open(key) as fh:
        grid = read_vgf(fh)
    specs = partition_grid(grid.dims, blocks)
    if shards is None:
        shards = len(specs)
    if not 1 <= shards <= len(specs):
        raise ReproError(
            f"shard count must be in [1, {len(specs)}], got {shards}"
        )
    if not 1 <= replicas <= shards:
        raise ReproError(
            f"replica count must be in [1, {shards}], got {replicas}"
        )
    block_objects = []
    for spec in specs:
        block_grid = extract_block(grid, spec)
        block_key = _block_key(key, spec.index)
        # Extents ride the block's own header too, so a block object is
        # self-describing without the manifest (and carries no timestep,
        # keeping TimestepCatalog scans unconfused).
        meta = {
            "block": spec.index,
            "block_ijk": list(spec.ijk),
            "block_lo": list(spec.lo),
            "block_hi": list(spec.hi),
            "parent": key,
        }
        fs.write_object(block_key, write_vgf(block_grid, codec=codec, meta=meta))
        chain = replica_chain(spec.index, shards, replicas)
        block_objects.append(BlockObject(spec, block_key, chain[0], chain))
    axes = getattr(grid, "axes", None)
    arrays = tuple(
        (arr.name, arr.values.dtype.str) for arr in grid.point_data
    )
    resolved_manifest_key = (
        manifest_key if manifest_key is not None else manifest_key_for(key)
    )
    manifest = ShardManifest(
        dims=tuple(grid.dims),
        origin=(0.0, 0.0, 0.0) if axes is not None else tuple(grid.origin),
        spacing=(1.0, 1.0, 1.0) if axes is not None else tuple(grid.spacing),
        blocks=tuple(int(b) for b in blocks),
        shards=shards,
        block_objects=tuple(block_objects),
        arrays=arrays,
        source_key=key,
        manifest_key=resolved_manifest_key,
        axes=tuple(np.asarray(a, dtype=np.float64) for a in axes)
        if axes is not None else None,
    )
    write_manifest(fs, resolved_manifest_key, manifest, sign_key=sign_key)
    return manifest


def write_manifest(fs, manifest_key: str, manifest: ShardManifest,
                   sign_key: bytes | None = None) -> None:
    """Sign and store a manifest as canonical-ish JSON."""
    doc = sign_manifest(manifest.to_doc(), sign_key=sign_key)
    fs.write_object(
        manifest_key, json.dumps(doc, sort_keys=True, indent=1).encode()
    )


class ManifestWatcher:
    """Serve a live view of a stored manifest's shard-map version.

    Shard servers hold one of these and stamp :meth:`version` into every
    pre-filter reply.  :meth:`version` re-reads the stored manifest at
    most once per ``min_interval`` seconds (the manifest is a small JSON
    object; a byte-compare decides whether re-parsing is needed), so a
    ``repro rebalance --apply`` that writes generation N+1 propagates to
    reply tokens within one interval — and from there to clients — with
    no server restart.
    """

    def __init__(self, fs, manifest_key: str, sign_key: bytes | None = None,
                 min_interval: float = 1.0, clock=time.monotonic):
        self._fs = fs
        self._manifest_key = manifest_key
        self._sign_key = sign_key
        self._min_interval = float(min_interval)
        self._clock = clock
        self._lock = threading.Lock()
        self._raw = fs.read_object(manifest_key)
        self._manifest = load_manifest(fs, manifest_key, sign_key=sign_key)
        self._checked_at = clock()

    def _refresh_locked(self, force: bool) -> None:
        now = self._clock()
        if not force and now - self._checked_at < self._min_interval:
            return
        self._checked_at = now
        try:
            raw = self._fs.read_object(self._manifest_key)
            if raw != self._raw:
                self._manifest = load_manifest(
                    self._fs, self._manifest_key, sign_key=self._sign_key
                )
                self._raw = raw
        except Exception:
            # A transiently unreadable (or half-written/corrupt) manifest
            # must not fail serving; keep advertising the last generation
            # we trusted and re-check next interval.
            return

    def refresh(self, force: bool = False) -> None:
        with self._lock:
            self._refresh_locked(force)

    def manifest(self) -> ShardManifest:
        with self._lock:
            self._refresh_locked(False)
            return self._manifest

    def version(self) -> int:
        with self._lock:
            self._refresh_locked(False)
            return int(self._manifest.map_version)


def load_manifest(fs, manifest_key: str,
                  sign_key: bytes | None = None) -> ShardManifest:
    """Read, verify, and decode a stored manifest."""
    data = fs.read_object(manifest_key)
    try:
        doc = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError(
            f"object {manifest_key!r} is not a JSON shard manifest: {exc}"
        ) from exc
    if not isinstance(doc, dict):
        raise FormatError(f"object {manifest_key!r} is not a manifest document")
    verify_manifest(doc, sign_key=sign_key)
    manifest = ShardManifest.from_doc(doc)
    if not manifest.manifest_key:
        manifest = ShardManifest(**{
            **manifest.__dict__, "manifest_key": manifest_key,
        })
    return manifest
