"""Synthetic Nyx cosmology dataset (the paper's Sec. VII data).

The paper's second dataset is a single-timestep Nyx snapshot from
SDRBench with six arrays; the evaluation contours **baryon density** at
the halo-formation threshold 81.66, with measured data selectivity of
0.06%.  This generator reproduces that statistical situation:

* baryon density is a log-normal transform of a Gaussian random field
  with a power-law spectrum — the standard approximation for the cosmic
  density field — so high-density halos are rare, compact peaks;
* the field is rescaled so that the paper's threshold value 81.66 lands
  at the paper's 0.06% edge-selectivity (the calibration is part of
  dataset construction, documented here, not hidden in benches);
* float32 mantissas of a log-normal field are close to incompressible,
  reproducing the paper's finding that GZip bought only ~11% on Nyx.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interesting import interesting_point_mask
from repro.datasets.fields import fractal_noise
from repro.errors import ReproError
from repro.grid.array import DataArray
from repro.grid.uniform import UniformGrid

__all__ = ["NyxParams", "NyxDataset", "HALO_THRESHOLD"]

#: The paper's halo-formation threshold on baryon density.
HALO_THRESHOLD = 81.66

#: The paper's measured data selectivity at that threshold.
TARGET_SELECTIVITY = 0.0006


@dataclass(frozen=True)
class NyxParams:
    """Generator configuration (defaults sized like the benches)."""

    dims: tuple[int, int, int] = (96, 96, 96)
    seed: int = 1701
    spectral_index: float = -2.2
    sigma: float = 1.9           # log-normal width: controls halo rarity
    target_selectivity: float = TARGET_SELECTIVITY

    def __post_init__(self):
        if self.sigma <= 0:
            raise ReproError(f"sigma must be > 0, got {self.sigma}")
        if not 0 < self.target_selectivity < 1:
            raise ReproError("target_selectivity must be in (0, 1)")


class NyxDataset:
    """Generates the single-timestep, six-array Nyx-like grid."""

    ARRAY_NAMES = (
        "velocity_x",
        "velocity_y",
        "velocity_z",
        "temperature",
        "dark_matter_density",
        "baryon_density",
    )

    def __init__(self, params: NyxParams | None = None):
        self.params = params if params is not None else NyxParams()

    # ------------------------------------------------------------------
    def _calibrate_scale(self, raw_density: np.ndarray) -> float:
        """Scale factor putting HALO_THRESHOLD at the target selectivity.

        Bisects on the threshold-in-raw-units whose edge-selectivity
        matches the paper's 0.06%, then maps it onto 81.66.
        """
        p = self.params
        total = raw_density.size
        lo = float(np.percentile(raw_density, 90.0))
        hi = float(raw_density.max())
        if not hi > lo:
            raise ReproError("degenerate density field; cannot calibrate")
        for _ in range(48):
            mid = 0.5 * (lo + hi)
            sel = interesting_point_mask(raw_density, mid).sum() / total
            # Higher threshold -> rarer level set -> lower selectivity.
            if sel > p.target_selectivity:
                lo = mid
            else:
                hi = mid
        return HALO_THRESHOLD / (0.5 * (lo + hi))

    def generate(self) -> UniformGrid:
        """Build the six-array grid."""
        p = self.params
        rng = np.random.default_rng(p.seed)
        shape = (p.dims[2], p.dims[1], p.dims[0])

        delta = fractal_noise(shape, rng, spectral_index=p.spectral_index)
        # Log-normal density: rare, compact high-density peaks (halos).
        raw = np.exp(p.sigma * delta)
        scale = self._calibrate_scale(raw)
        baryon = (raw * scale).astype(np.float32)

        # Dark matter traces baryons with extra small-scale power.
        dm_extra = fractal_noise(shape, rng, spectral_index=p.spectral_index + 0.5)
        dark = (np.exp(p.sigma * (0.9 * delta + 0.45 * dm_extra)) * scale * 1.4)

        # Temperature: density-correlated polytrope + scatter.
        t_scatter = fractal_noise(shape, rng, spectral_index=-1.8)
        temperature = 1.0e4 * (raw ** 0.6) * np.exp(0.3 * t_scatter)

        # Velocities: independent large-scale flows (km/s-ish magnitudes).
        vel = [
            2.5e7 * fractal_noise(shape, rng, spectral_index=-2.6)
            for _ in range(3)
        ]

        grid = UniformGrid(p.dims, origin=(0.0, 0.0, 0.0),
                           spacing=tuple(1.0 / max(d - 1, 1) for d in p.dims))
        fields = {
            "velocity_x": vel[0],
            "velocity_y": vel[1],
            "velocity_z": vel[2],
            "temperature": temperature,
            "dark_matter_density": dark,
            "baryon_density": baryon,
        }
        for name in self.ARRAY_NAMES:
            grid.point_data.add(
                DataArray(
                    name,
                    np.ascontiguousarray(fields[name], dtype=np.float32).reshape(-1),
                )
            )
        return grid
