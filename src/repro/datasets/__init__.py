"""Synthetic dataset generators standing in for the paper's two datasets.

The paper's data is not redistributable (the LANL deep-water asteroid
impact ensemble; an SDRBench Nyx snapshot), so this package generates
physics-inspired synthetic equivalents that reproduce the *properties the
evaluation actually measures* — material-fraction arrays with sharp, small
interfaces (tiny contour selectivity), compression ratios that decay over
simulation time, and a poorly compressible log-normal cosmology field with
a rare-halo threshold.  DESIGN.md §2 records the substitution argument.
"""

from repro.datasets.asteroid import AsteroidImpactDataset, AsteroidParams
from repro.datasets.fields import (
    fractal_noise,
    radial_distance,
    smoothstep,
)
from repro.datasets.nyx import NyxDataset, NyxParams

__all__ = [
    "AsteroidImpactDataset",
    "AsteroidParams",
    "NyxDataset",
    "NyxParams",
    "fractal_noise",
    "smoothstep",
    "radial_distance",
]
