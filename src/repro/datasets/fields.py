"""Field-synthesis primitives: spectral noise, profiles, geometry helpers."""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from repro.errors import ReproError

__all__ = ["fractal_noise", "smoothstep", "radial_distance", "unit_coords"]


def fractal_noise(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    spectral_index: float = -2.0,
    kmin: float = 1.0,
) -> np.ndarray:
    """Zero-mean, unit-variance noise with a power-law spectrum.

    Synthesized in Fourier space: white noise shaped by
    ``P(k) ~ k**spectral_index`` for ``k >= kmin`` (modes below ``kmin``
    are damped to keep the field statistically homogeneous).  A spectral
    index of -2 .. -3 gives the smooth-but-multiscale character of
    hydrodynamic turbulence and cosmological density fields.
    """
    if any(s < 1 for s in shape):
        raise ReproError(f"invalid noise shape {shape}")
    white = rng.standard_normal(shape)
    spectrum = sp_fft.rfftn(white)
    freqs = [np.fft.fftfreq(s) * s for s in shape[:-1]]
    freqs.append(np.fft.rfftfreq(shape[-1]) * shape[-1])
    grids = np.meshgrid(*freqs, indexing="ij", sparse=True)
    k2 = sum(g * g for g in grids)
    k = np.sqrt(k2)
    with np.errstate(divide="ignore"):
        amp = np.where(k >= kmin, k ** (spectral_index / 2.0), 0.0)
    amp.flat[0] = 0.0  # kill the DC mode: zero-mean output
    field = sp_fft.irfftn(spectrum * amp, s=shape)
    std = field.std()
    if std > 0:
        field = field / std
    return field


def smoothstep(x: np.ndarray) -> np.ndarray:
    """The cubic smoothstep ``3x^2 - 2x^3`` on [0, 1], clipped outside."""
    t = np.clip(x, 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


def unit_coords(dims: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse ``(z, y, x)`` coordinate grids normalized to [0, 1].

    Shapes broadcast to ``(nz, ny, nx)``; degenerate axes map to 0.5.
    """
    nx, ny, nz = dims

    def axis(n: int) -> np.ndarray:
        if n == 1:
            return np.array([0.5])
        return np.arange(n) / (n - 1)

    z = axis(nz)[:, None, None]
    y = axis(ny)[None, :, None]
    x = axis(nx)[None, None, :]
    return z, y, x


def radial_distance(
    dims: tuple[int, int, int], center: tuple[float, float, float]
) -> np.ndarray:
    """Distance from ``center`` (in unit coordinates), shape ``(nz, ny, nx)``."""
    z, y, x = unit_coords(dims)
    cx, cy, cz = center
    return np.sqrt((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2)
