"""Synthetic deep-water asteroid impact dataset (the paper's Sec. III data).

The real dataset [Patchett & Gisler 2017] is an xRage run of an asteroid
striking deep ocean water: 500^3 points x 11 arrays x many timesteps, not
redistributable.  This generator produces a scaled, physics-inspired
equivalent with the three properties the paper's evaluation measures:

1. **sharp material interfaces** — ``v02`` (water volume fraction) and
   ``v03`` (asteroid volume fraction) are *exactly* 0/1 almost everywhere
   with sub-cell transition shells, so contour selectivity is a thin
   surface layer (Fig. 6).  Selectivity scales as ``interface_area / N``
   for an ``N^3`` grid; at the paper's 500^3 the ocean surface costs a
   few permille, at the default 96^3 it costs ~20 permille — the
   ``test_abl_resolution`` bench demonstrates the 1/N scaling and the
   extrapolation to the paper's resolution.
2. **entropy growth over time** — early timesteps are near-pristine
   (per-z-plane-constant fields compress by 2-3 orders of magnitude);
   as the run progresses a mixing layer around the interface and
   post-impact spray/debris inject incompressible float noise over a
   growing volume fraction, so GZip/LZ4 ratios decay exactly as in the
   paper's Fig. 5a/5d.
3. **the impact narrative** — the asteroid descends, strikes the ocean
   midway through the timestep range, opens a crater, and launches
   expanding tsunami rings, so v02 selectivity *rises* after impact while
   v03 stays far more selective than v02 (Fig. 6 trends, Figs. 7/8).

All 11 arrays of the paper's Table I are produced per timestep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.fields import fractal_noise, smoothstep, unit_coords
from repro.errors import ReproError
from repro.grid.array import DataArray
from repro.grid.uniform import UniformGrid

__all__ = ["AsteroidParams", "AsteroidImpactDataset", "TABLE_I_ARRAYS"]

#: The paper's Table I: array name -> description.
TABLE_I_ARRAYS: dict[str, str] = {
    "rho": "Density in grams per cubic centimeter",
    "prs": "Pressure in microbars",
    "tev": "Temperature in electronvolt",
    "xdt": "X component vectors in centimeters per second",
    "ydt": "Y component vectors in centimeters per second",
    "zdt": "Z component vectors in centimeters per second",
    "snd": "Sound speed in centimeters per second",
    "grd": "AMR grid refinement level",
    "mat": "Material number id",
    "v02": "Volume fraction of water",
    "v03": "Volume fraction of asteroid",
}


@dataclass(frozen=True)
class AsteroidParams:
    """Generator configuration.

    The defaults trace the paper's setup at reduced resolution: 9
    timesteps spanning 0..48013 with the impact midway, an ocean filling
    the lower ~35% of the domain, and an asteroid ~4.5% of the domain
    wide.
    """

    dims: tuple[int, int, int] = (96, 96, 96)
    timesteps: tuple[int, ...] = tuple(int(round(t)) for t in np.linspace(0, 48013, 9))
    seed: int = 2024
    ocean_level: float = 0.35        # unit-z height of the calm ocean surface
    asteroid_radius: float = 0.085   # unit-length radius
    entry_height: float = 0.95       # asteroid center height at t=0
    impact_fraction: float = 0.5     # fraction of the run at which it strikes
    impact_site: tuple[float, float] = (0.5, 0.5)
    #: late-time volume fraction of the domain carrying mixing-layer noise
    mixing_peak: float = 0.10
    #: late-time volume fraction carrying spray/mist noise above the surface
    mist_peak: float = 0.04

    def __post_init__(self):
        if len(self.timesteps) < 2:
            raise ReproError("need at least 2 timesteps")
        if not 0 < self.ocean_level < 1:
            raise ReproError(f"ocean_level must be in (0,1), got {self.ocean_level}")
        if self.asteroid_radius <= 0:
            raise ReproError("asteroid_radius must be > 0")


class AsteroidImpactDataset:
    """Generates one :class:`~repro.grid.uniform.UniformGrid` per timestep."""

    def __init__(self, params: AsteroidParams | None = None):
        self.params = params if params is not None else AsteroidParams()
        p = self.params
        # Static multiscale noise bases; time scales amplitudes/extents so
        # fields evolve coherently across timesteps.
        rng = np.random.default_rng(p.seed)
        shape = (p.dims[2], p.dims[1], p.dims[0])  # (nz, ny, nx)
        self._noise_a = fractal_noise(shape, rng, spectral_index=-2.4)
        self._noise_b = fractal_noise(shape, rng, spectral_index=-2.0)
        self._noise_c = fractal_noise(shape, rng, spectral_index=-1.6)
        self._ripple2d = fractal_noise(shape[1:], rng, spectral_index=-2.2)

    # ------------------------------------------------------------------
    @property
    def timesteps(self) -> tuple[int, ...]:
        return self.params.timesteps

    def progress(self, timestep: int) -> float:
        """Normalized time in [0, 1] for a timestep number."""
        t0, t1 = self.params.timesteps[0], self.params.timesteps[-1]
        return (timestep - t0) / (t1 - t0)

    @property
    def cell_size(self) -> float:
        """Lattice spacing in unit coordinates (smallest axis)."""
        return 1.0 / (max(self.params.dims) - 1)

    # ------------------------------------------------------------------
    def _geometry(self, s: float):
        """Time-dependent geometry at normalized time ``s``.

        Returns ``(z, surface, dist_ast, radius, tau)`` where ``surface``
        is the (1, ny, nx) ocean-surface height field and ``tau`` the
        post-impact progress in [0, 1] (0 before impact).
        """
        p = self.params
        z, y, x = unit_coords(p.dims)
        cx, cy = p.impact_site
        s_imp = p.impact_fraction

        surface = np.full((1, y.shape[1], x.shape[2]), p.ocean_level)
        if s > s_imp:
            tau = (s - s_imp) / (1.0 - s_imp)
            d = np.sqrt((x - cx) ** 2 + (y - cy) ** 2)
            ring_r = 0.05 + 0.45 * tau
            ring_w = 0.03 + 0.05 * tau
            crest = 0.06 * np.exp(-(((d - ring_r) / ring_w) ** 2)) / (1.0 + 3.0 * tau)
            crater = -0.10 * np.exp(-((d / 0.08) ** 2)) * np.exp(-3.0 * tau)
            ring2 = 0.025 * np.exp(-(((d - 0.6 * ring_r) / ring_w) ** 2)) * tau
            surface = surface + crest + crater + ring2
        else:
            tau = 0.0

        # Surface ripple grows with time (roughening -> rising selectivity).
        ripple_amp = (0.001 + 0.012 * smoothstep(np.array(s)) + 0.02 * tau)
        surface = surface + ripple_amp * self._ripple2d[None, :, :]

        if s <= s_imp:
            frac = s / s_imp if s_imp > 0 else 1.0
            az = p.entry_height - (p.entry_height - p.ocean_level) * frac
            radius = p.asteroid_radius
            squash = 1.0
        else:
            az = p.ocean_level - 0.08 * tau
            radius = p.asteroid_radius * (1.0 + 0.5 * tau)
            squash = 1.0 - 0.45 * tau
        dist_ast = np.sqrt(
            (x - cx) ** 2 + (y - cy) ** 2 + ((z - az) / squash) ** 2
        )
        return z, surface, dist_ast, radius, tau

    @staticmethod
    def _snap(field: np.ndarray, eps: float = 1e-3) -> np.ndarray:
        """Pin near-0/near-1 values to exact constants (compressible runs)."""
        field[field < eps] = 0.0
        field[field > 1.0 - eps] = 1.0
        return field

    def generate(self, timestep: int) -> UniformGrid:
        """Build the full 11-array grid for one timestep."""
        p = self.params
        if timestep not in p.timesteps:
            raise ReproError(
                f"timestep {timestep} not in this dataset; have {p.timesteps}"
            )
        s = self.progress(timestep)
        z, surface, dist_ast, radius, tau = self._geometry(s)
        w = 0.6 * self.cell_size  # sub-cell interface: a 1-2 point shell

        # --- volume fractions ------------------------------------------
        signed_water = surface - z  # > 0 under water
        v02 = self._snap(smoothstep(signed_water / (2.0 * w) + 0.5))
        v03 = self._snap(smoothstep((radius - dist_ast) / (2.0 * w) + 0.5))

        # --- entropy growth (Fig. 5) -------------------------------------
        # Dissolved aeration in the water interior and haze in the air:
        # float noise whose values stay in (0.91, 1] / [0, 0.09) — bounded
        # away from every evaluated contour value — over a material
        # fraction that grows with time.  This is what makes compression
        # ratios decay from hundreds to single digits *without* inflating
        # the interesting-edge counts: real multi-material hydro data
        # behaves the same way (partial volume fractions spread through the
        # fluid long before the 0.1..0.9 level sets move).
        aer_frac = p.mixing_peak * 2.2 * s ** 0.8 + 0.12 * tau
        if aer_frac > 0:
            qa = np.quantile(self._noise_a, 1.0 - min(aer_frac, 0.6))
            aer = (self._noise_a > qa) & (signed_water > 2.0 * w)
            v02 = np.where(
                aer,
                1.0 - np.clip(0.04 * np.abs(self._noise_c) + 0.002, 0.0, 0.09),
                v02,
            )
        haze_frac = 0.04 * s ** 0.8 + 0.05 * tau
        if haze_frac > 0:
            qh = np.quantile(self._noise_b, 1.0 - min(haze_frac, 0.4))
            haze = (self._noise_b > qh) & (z > surface + 2.0 * w) & (v02 == 0.0)
            v02 = np.where(
                haze,
                np.clip(0.03 * np.abs(self._noise_a) + 0.001, 0.0, 0.09),
                v02,
            )

        # --- selectivity structure (Fig. 6 / Table II) --------------------
        # Foam/spray above the surface: sparse blobs of *partial* water
        # fraction (values ~0.05..0.55) against the v02 == 0 air.  A blob
        # of fraction f crosses exactly the contour values below f, so low
        # contour values see more interesting edges than high ones — the
        # paper's ordering (selection rate falls as the contour value
        # rises).  Blob volume grows slowly pre-impact and sharply after.
        foam_frac = 0.002 + 0.008 * s + p.mist_peak * tau
        qf = np.quantile(self._noise_b, 1.0 - min(foam_frac, 0.5))
        foam = (
            (self._noise_b > qf)
            & (z > surface)
            & (z < surface + 0.05 + 0.25 * tau)
        )
        v02 = np.where(foam, np.clip(0.05 + 0.5 * np.abs(self._noise_a), 0.0, 0.95), v02)

        # Ablation debris around the asteroid: the same two mechanisms for
        # v03 — bounded fracturing noise inside the body plus partial-
        # fraction debris blobs outside it.
        frac_frac = 0.3 * s ** 0.6 + 0.2 * tau
        qi = np.quantile(self._noise_b, 1.0 - min(frac_frac, 0.6))
        fractured = (self._noise_b > qi) & (dist_ast < radius - 2.0 * w)
        v03 = np.where(
            fractured,
            1.0 - np.clip(0.04 * np.abs(self._noise_c) + 0.002, 0.0, 0.09),
            v03,
        )
        debris_frac = 0.002 + 0.006 * s + 0.02 * tau
        qb = np.quantile(self._noise_c, 1.0 - debris_frac)
        debris = (
            (self._noise_c > qb)
            & (dist_ast > radius + 3.0 * w)
            & (dist_ast < radius * (1.8 + 0.8 * tau))
        )
        v03 = np.where(debris, np.clip(0.05 + 0.5 * np.abs(self._noise_b), 0.0, 0.95), v03)

        # --- physical fields --------------------------------------------
        air = np.clip(1.0 - v02 - v03, 0.0, 1.0)
        rho = 0.0012 * air + 1.0 * v02 + 3.3 * v03
        depth = np.clip(surface - z, 0.0, None)
        prs = 1.01 + 98.0 * depth * v02 + 40.0 * tau * np.exp(-dist_ast / 0.2)
        tev = 0.025 * (1.0 + 3.0 * v03) + 2.0 * tau * np.exp(-dist_ast / 0.1)
        snd = np.sqrt(np.clip(prs, 1e-6, None) / np.clip(rho, 1e-4, None)) * 1e4

        fall = -2.0e6 if tau == 0.0 else -2.0e6 * float(np.exp(-4.0 * tau))
        zc, yc, xc = unit_coords(p.dims)
        rx = xc - p.impact_site[0]
        ry = yc - p.impact_site[1]
        rz = zc - p.ocean_level
        rnorm = np.sqrt(rx * rx + ry * ry + rz * rz) + 1e-6
        splash = 5.0e5 * tau * np.exp(-rnorm / 0.3)
        ast_core = np.exp(-((dist_ast / max(radius, 1e-6)) ** 2))
        xdt = splash * rx / rnorm
        ydt = splash * ry / rnorm
        zdt = fall * ast_core + splash * rz / rnorm

        interface = np.maximum(
            np.exp(-np.abs(signed_water) / (4 * w)),
            np.exp(-np.abs(dist_ast - radius) / (4 * w)),
        )
        grd = np.floor(interface * 3.999)

        mat = np.zeros(np.broadcast_shapes(v02.shape, v03.shape))
        mat[np.broadcast_to(v02 >= 0.5, mat.shape)] = 2.0
        mat[np.broadcast_to(v03 >= 0.5, mat.shape)] = 3.0

        grid = UniformGrid(
            p.dims,
            origin=(0.0, 0.0, 0.0),
            spacing=tuple(1.0 / max(d - 1, 1) for d in p.dims),
        )
        arrays = {
            "rho": rho, "prs": prs, "tev": tev, "xdt": xdt, "ydt": ydt,
            "zdt": zdt, "snd": snd, "grd": grd, "mat": mat, "v02": v02,
            "v03": v03,
        }
        target_shape = (p.dims[2], p.dims[1], p.dims[0])
        for name in TABLE_I_ARRAYS:
            values = np.broadcast_to(arrays[name], target_shape)
            grid.point_data.add(
                DataArray(
                    name,
                    np.ascontiguousarray(values, dtype=np.float32).reshape(-1),
                )
            )
        return grid

    def generate_arrays(self, timestep: int, names: list[str]) -> UniformGrid:
        """Generate, then keep only ``names`` (convenience for benches)."""
        full = self.generate(timestep)
        grid = UniformGrid(full.dims, full.origin, full.spacing)
        for name in names:
            grid.point_data.add(full.point_data.get(name))
        return grid
