"""Span-based tracing over wall *and* simulated clocks.

The paper's whole evaluation is a load-time breakdown (Sec. VI): where
does a contour request spend its time — store read, decompress,
pre-filter, transfer?  This module records that as a *trace*: a tree of
named spans, each carrying wall-clock and (optionally)
:class:`~repro.storage.netsim.SimClock` durations, attributes, and point
events (a retry, a cache hit).  Spans nest through a per-thread stack,
so ``with tracer.span("a"): with tracer.span("b"): ...`` yields ``b``
parented under ``a`` without any explicit plumbing.

Cross-process traces work like W3C trace-context/NetLogger: the client
:meth:`Tracer.inject`\\ s its current ``(trace_id, span_id)`` into the
RPC envelope, the server opens child spans under that remote parent via
:meth:`Tracer.activate`, ships its finished span summaries back in the
reply, and the client grafts them into its own record with
:meth:`Tracer.adopt` (rebasing the server's wall epoch onto its own, the
classic midpoint alignment).  The result is one tree per request
spanning both processes.

Tracing must cost nothing when off: :data:`NULL_TRACER` (the default
everywhere) reuses one inert context manager and touches no clock, so
baseline benchmark numbers do not move.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "new_id"]


def new_id() -> str:
    """A fresh 64-bit random hex id (trace and span ids share the format)."""
    return os.urandom(8).hex()


class Span:
    """One timed operation: name, ids, clocks, attributes, events.

    Wall times come from ``time.perf_counter()`` plus a per-tracer epoch
    so they are comparable across spans of one tracer; simulated times
    come from the tracer's :class:`~repro.storage.netsim.SimClock` when
    it has one (``None`` otherwise).
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "attrs", "events",
        "start_wall", "end_wall", "start_sim", "end_sim", "process",
        "thread_id", "error",
    )

    def __init__(self, trace_id: str, span_id: str, parent_id: str | None,
                 name: str, attrs: dict, process: str):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.events: list[dict] = []
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.start_sim: float | None = None
        self.end_sim: float | None = None
        self.process = process
        self.thread_id = threading.get_ident()
        self.error: str | None = None

    @property
    def wall_duration(self) -> float:
        return self.end_wall - self.start_wall

    @property
    def sim_duration(self) -> float | None:
        if self.start_sim is None or self.end_sim is None:
            return None
        return self.end_sim - self.start_sim

    def add_event(self, name: str, **attrs) -> None:
        """Attach a point-in-time event (retry, cache hit, breaker trip)."""
        self.events.append({"name": name, "wall": time.perf_counter(), **attrs})

    def to_dict(self) -> dict:
        """Wire/export form: plain msgpack- and JSON-safe types only."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "process": self.process,
            "thread_id": self.thread_id,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "attrs": self.attrs,
            "events": self.events,
            "error": self.error,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"wall={self.wall_duration:.6f}s)"
        )


class _SpanContext:
    """Context manager that opens/closes one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self._span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self._span)


class _NullSpan:
    """Inert stand-in so disabled-tracing code paths stay branch-free."""

    __slots__ = ()
    trace_id = span_id = parent_id = None
    events: list = []
    attrs: dict = {}

    def add_event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every operation is a reused no-op.

    ``bool(NULL_TRACER)`` is ``False``, so hot paths can guard optional
    work (building attribute dicts, serializing context) with a plain
    truth test.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def activate(self, ctx, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> _NullSpan:
        return _NULL_SPAN

    def add_event(self, name: str, **attrs) -> None:
        pass

    def inject(self) -> None:
        return None

    def fork(self, name: str, **attrs):
        return lambda **_extra: _NULL_SPAN

    def adopt(self, span_dicts, anchor=None) -> None:
        pass

    def finished(self) -> list:
        return []

    def drain(self) -> list:
        return []


#: Shared inert tracer; the default for every traced component.
NULL_TRACER = NullTracer()


class Tracer:
    """Records a bounded history of finished spans.

    Parameters
    ----------
    process:
        Label stamped on every span (``"client"``, ``"server"``); becomes
        the Chrome-trace pid so the two processes render as separate
        tracks.
    sim_clock:
        Optional :class:`~repro.storage.netsim.SimClock`; when present
        every span also records simulated start/end times.
    max_spans:
        Retention bound on the finished-span ring (oldest dropped first).
    """

    enabled = True

    def __init__(self, process: str = "client", sim_clock=None,
                 max_spans: int = 100_000):
        self.process = process
        self.sim_clock = sim_clock
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._local = threading.local()
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        span.start_wall = time.perf_counter()
        if self.sim_clock is not None:
            span.start_sim = self.sim_clock.now
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end_wall = time.perf_counter()
        if self.sim_clock is not None:
            span.end_sim = self.sim_clock.now
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # mis-nested exit: drop it wherever it is, keep the rest
            try:
                stack.remove(span)
            except ValueError:
                pass
        self._record(span)
        collectors = getattr(self._local, "collectors", None)
        if collectors:
            for sink in collectors:
                sink.append(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a child of the current span (or a new root) on entry."""
        stack = self._stack()
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = new_id(), None
        span = Span(trace_id, new_id(), parent_id, name, attrs, self.process)
        return _SpanContext(self, span)

    def activate(self, ctx, name: str, **attrs) -> _SpanContext:
        """Open a span under a *remote* parent from an injected context.

        ``ctx`` is the ``{"trace_id": ..., "span_id": ...}`` mapping a
        peer built with :meth:`inject`; malformed contexts fall back to a
        fresh local root rather than failing the request.
        """
        trace_id = parent_id = None
        if isinstance(ctx, dict):
            trace_id = ctx.get("trace_id")
            parent_id = ctx.get("span_id")
        if not isinstance(trace_id, str) or not trace_id:
            trace_id, parent_id = new_id(), None
        span = Span(trace_id, new_id(), parent_id, name, attrs, self.process)
        return _SpanContext(self, span)

    def fork(self, name: str, **attrs):
        """Capture the current span context for use on another thread.

        Span stacks are thread-local, so a worker thread spawned inside a
        span would otherwise start a fresh root and its spans would fall
        out of the trace.  ``fork`` snapshots :meth:`inject` **on the
        calling thread** and returns a zero-arg opener; the worker calls
        it (``with opener(): ...``) and gets a span parented under the
        caller's current span, with the worker's own thread id.
        """
        ctx = self.inject()
        return lambda **extra: self.activate(ctx, name, **{**attrs, **extra})

    def current_span(self) -> Span | _NullSpan:
        stack = self._stack()
        return stack[-1] if stack else _NULL_SPAN

    def add_event(self, name: str, **attrs) -> None:
        """Record an event on the current span (no-op outside any span)."""
        self.current_span().add_event(name, **attrs)

    # ------------------------------------------------------------------
    def inject(self) -> dict | None:
        """Envelope form of the current span context, or ``None`` at root."""
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return {"trace_id": top.trace_id, "span_id": top.span_id}

    def adopt(self, span_dicts, anchor: Span | None = None) -> None:
        """Graft a peer's finished spans (``to_dict`` form) into this record.

        The peer's ``perf_counter`` epoch is meaningless here, so spans
        are rebased: the remote subtree's root interval is centred inside
        ``anchor``'s interval (the RPC span that carried it — midpoint
        alignment splits the network time evenly between request and
        reply). Simulated times are left untouched: the sim clock is
        already shared in-process and meaningless across real processes.
        """
        spans = [d for d in span_dicts or [] if isinstance(d, dict)]
        if not spans:
            return
        shift = 0.0
        if anchor is not None:
            ids = {d.get("span_id") for d in spans}
            roots = [d for d in spans if d.get("parent_id") not in ids]
            if roots:
                r_start = min(d.get("start_wall", 0.0) for d in roots)
                r_end = max(d.get("end_wall", 0.0) for d in roots)
                # The anchor is usually still open (the RPC client adopts
                # before closing its rpc.call span); use "now" as its end.
                a_end = anchor.end_wall or time.perf_counter()
                a_mid = (anchor.start_wall + a_end) / 2.0
                shift = a_mid - (r_start + r_end) / 2.0
        for d in spans:
            span = Span(
                d.get("trace_id") or new_id(),
                d.get("span_id") or new_id(),
                d.get("parent_id"),
                str(d.get("name", "?")),
                dict(d.get("attrs") or {}),
                str(d.get("process", "remote")),
            )
            span.start_wall = float(d.get("start_wall", 0.0)) + shift
            span.end_wall = float(d.get("end_wall", 0.0)) + shift
            span.start_sim = d.get("start_sim")
            span.end_sim = d.get("end_sim")
            span.thread_id = int(d.get("thread_id", 0))
            span.events = list(d.get("events") or [])
            span.error = d.get("error")
            self._record(span)

    # ------------------------------------------------------------------
    class _Collector:
        """Context manager capturing spans finished on this thread."""

        __slots__ = ("_tracer", "spans")

        def __init__(self, tracer: "Tracer"):
            self._tracer = tracer
            self.spans: list[Span] = []

        def append(self, span: Span) -> None:
            self.spans.append(span)

        def __enter__(self) -> "Tracer._Collector":
            collectors = getattr(self._tracer._local, "collectors", None)
            if collectors is None:
                collectors = self._tracer._local.collectors = []
            collectors.append(self)
            return self

        def __exit__(self, *exc) -> None:
            self._tracer._local.collectors.remove(self)

    def collect(self) -> "Tracer._Collector":
        """Capture every span this thread finishes inside the block.

        The RPC server uses this to gather exactly the spans one dispatch
        produced, so it can ship them back in that request's reply.
        """
        return Tracer._Collector(self)

    # ------------------------------------------------------------------
    def finished(self) -> list[Span]:
        """Snapshot of retained finished spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> list[Span]:
        """Return and clear the retained spans (export-then-truncate)."""
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
        return spans
