"""Flight recorder: an always-on bounded ring of recent structured events.

When a shed, an integrity failure, or a p999 blowup happens, a trace that
was never started cannot explain it.  The flight recorder is the
black-box counterpart to :mod:`repro.obs.trace`: every server and client
component feeds it continuously — request begin/end, phase timings,
retries, sheds, breaker flips, cache and integrity events — at a cost
low enough to leave on in production even with tracing off, and when
something goes wrong the last N seconds are *already there*.

Design for the hot path:

* :meth:`FlightRecorder.record` takes **no lock**.  The ring is a
  fixed-size Python list of event tuples indexed by a global sequence
  counter; the slot store is one ``STORE_SUBSCR`` bytecode, atomic under
  the GIL, and each event tuple is built completely before it is
  published, so concurrent readers never observe a torn event.
* :meth:`snapshot` copies the slot list in one atomic slice, then sorts
  by timestamp — a self-consistent view without ever blocking writers.
* Trigger kinds (error, shed, integrity failure, deadline bust) make the
  recorder dump itself: the last window of events is serialized to JSONL
  in ``dump_dir``, throttled so an error storm produces a bounded number
  of files.  ``SIGUSR2`` (see :func:`install_signal_dump`), the ``dump``
  RPC endpoint, and drain all reuse the same :meth:`dump` path.

:data:`NULL_RECORDER` is the inert default (``bool() is False``), so
components can record unconditionally and un-wired code paths stay free.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Callable

__all__ = [
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "DEFAULT_TRIGGERS",
    "install_signal_dump",
]

#: Event kinds that make the recorder snapshot itself to disk.
DEFAULT_TRIGGERS = frozenset({
    "request.error",
    "request.shed",
    "tenant.shed",
    "deadline.expired",
    "integrity.failure",
    "breaker.open",
})


class NullFlightRecorder:
    """The zero-cost stand-in: every operation is a no-op.

    ``bool(NULL_RECORDER)`` is ``False`` so callers can guard optional
    work (building field dicts) with a plain truth test, exactly like
    :data:`~repro.obs.trace.NULL_TRACER`.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def record(self, kind: str, /, **fields) -> None:
        pass

    def phase(self, name: str, **fields) -> "_NullPhase":
        return _NULL_PHASE

    def snapshot(self, last_seconds: float | None = None) -> list:
        return []

    def dump(self, reason: str = "manual", path: str | None = None,
             last_seconds: float | None = None) -> str | None:
        return None

    def info(self) -> dict:
        return {"enabled": False}


class _NullPhase:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()

#: Shared inert recorder; the default for every instrumented component.
NULL_RECORDER = NullFlightRecorder()


class _Phase:
    """Times one pipeline phase and records it as a single event."""

    __slots__ = ("_recorder", "_name", "_fields", "_t0")

    def __init__(self, recorder: "FlightRecorder", name: str, fields: dict):
        self._recorder = recorder
        self._name = name
        self._fields = fields

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._t0
        fields = self._fields
        if exc is not None:
            fields = dict(fields)
            fields["error"] = f"{exc_type.__name__}: {exc}"
        self._recorder.record(
            "phase", name=self._name, duration=duration, **fields
        )
        return False


class FlightRecorder:
    """Lock-free bounded ring of recent structured events.

    Parameters
    ----------
    capacity:
        Ring size in events; the newest ``capacity`` events are retained.
    window:
        Default horizon (seconds) a trigger/dump serializes.
    dump_dir:
        Directory trigger dumps are written into (created on first
        dump).  ``None`` disables automatic trigger dumps — explicit
        :meth:`dump` calls with a ``path`` still work, and
        :meth:`snapshot` is always available.
    trigger_kinds:
        Event kinds that fire an automatic dump (when ``dump_dir`` is
        set).  Defaults to :data:`DEFAULT_TRIGGERS`.
    dump_interval:
        Minimum seconds between automatic dumps: an error storm yields
        one dump per interval, not one per error.
    clock:
        Injectable monotonic clock (tests use a fake).  Event wall
        timestamps always come from ``time.time()`` so dumps carry
        human-readable epochs.
    process:
        Label stamped into dump headers (``"server"``, ``"client"``).
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 8192,
        window: float = 30.0,
        dump_dir: str | None = None,
        trigger_kinds: frozenset[str] | None = None,
        dump_interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        process: str = "server",
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.window = float(window)
        self.dump_dir = dump_dir
        self.trigger_kinds = (
            frozenset(trigger_kinds) if trigger_kinds is not None
            else DEFAULT_TRIGGERS
        )
        self.dump_interval = float(dump_interval)
        self.process = process
        self._clock = clock
        self._slots: list = [None] * self.capacity
        self._seq = itertools.count(1)
        self._dump_lock = threading.Lock()
        self._last_dump = -float("inf")
        self._dumps = 0
        self._dump_failures = 0
        self._on_dump: list[Callable[[str, str], None]] = []

    def __bool__(self) -> bool:
        return True

    # -- hot path ----------------------------------------------------------
    def record(self, kind: str, /, **fields) -> None:
        """Append one event; safe from any thread, no lock taken.

        ``kind`` is positional-only so a field may itself be named
        ``kind`` (phase events forward arbitrary caller fields).  The
        event tuple is fully constructed before the single atomic slot
        store publishes it, so readers can never see a torn event; the
        per-process sequence number orders events across threads.
        """
        seq = next(self._seq)
        event = (
            seq, time.time(), self._clock(), threading.get_ident(),
            kind, fields,
        )
        self._slots[(seq - 1) % self.capacity] = event
        if kind in self.trigger_kinds:
            self._maybe_auto_dump(kind)

    def phase(self, name: str, **fields) -> _Phase:
        """Context manager: time a pipeline phase, record one event."""
        return _Phase(self, name, fields)

    # -- reading -----------------------------------------------------------
    def snapshot(self, last_seconds: float | None = None) -> list[dict]:
        """Self-consistent copy of the retained events, oldest first.

        The slot list is copied in one atomic slice (writers never
        block); events are then ordered by monotonic timestamp, with the
        sequence number as the tiebreaker, so the returned timeline is
        monotonic by construction.  ``last_seconds`` bounds the horizon
        (default: everything retained).
        """
        slots = self._slots[:]
        horizon = None
        if last_seconds is not None:
            horizon = self._clock() - float(last_seconds)
        events = [
            ev for ev in slots
            if ev is not None and (horizon is None or ev[2] >= horizon)
        ]
        events.sort(key=lambda ev: (ev[2], ev[0]))
        # Reserved keys win over same-named caller fields (a phase may
        # legitimately carry a ``kind=`` field of its own).
        return [
            {
                **fields,
                "seq": seq, "wall": wall, "mono": mono, "thread": thread,
                "kind": kind,
            }
            for seq, wall, mono, thread, kind, fields in events
        ]

    def info(self) -> dict:
        """Summary for ``health``/``stats`` collectors."""
        slots = self._slots[:]
        retained = sum(1 for ev in slots if ev is not None)
        newest = max((ev[0] for ev in slots if ev is not None), default=0)
        return {
            "enabled": True,
            "capacity": self.capacity,
            "retained": retained,
            "recorded": newest,
            "dumps": self._dumps,
            "dump_failures": self._dump_failures,
            "dump_dir": self.dump_dir or "",
        }

    # -- dumping -----------------------------------------------------------
    def on_dump(self, hook: Callable[[str, str], None]) -> None:
        """Register ``hook(path, reason)`` called after each dump."""
        self._on_dump.append(hook)

    def dump(self, reason: str = "manual", path: str | None = None,
             last_seconds: float | None = None) -> str | None:
        """Serialize the last window of events to JSONL; returns the path.

        The first line is a header record (``"kind": "flightrec.header"``)
        carrying the process label, reason, and wall epoch; every
        following line is one event.  With neither ``path`` nor a
        configured ``dump_dir`` the dump is skipped (returns ``None``).
        """
        if path is None:
            if self.dump_dir is None:
                return None
            os.makedirs(self.dump_dir, exist_ok=True)
            stamp = time.strftime("%Y%m%d-%H%M%S")
            safe = "".join(c if c.isalnum() or c in "._-" else "_"
                           for c in reason)
            path = os.path.join(
                self.dump_dir, f"flightrec-{stamp}-{safe}.jsonl"
            )
        events = self.snapshot(
            last_seconds if last_seconds is not None else self.window
        )
        header = {
            "kind": "flightrec.header",
            "process": self.process,
            "reason": reason,
            "wall": time.time(),
            "events": len(events),
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for event in events:
                fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        self._dumps += 1
        for hook in self._on_dump:
            try:
                hook(path, reason)
            except Exception:
                pass  # observability must never take down the caller
        return path

    def _maybe_auto_dump(self, kind: str) -> None:
        if self.dump_dir is None:
            return
        now = self._clock()
        with self._dump_lock:
            if now - self._last_dump < self.dump_interval:
                return
            self._last_dump = now
        try:
            self.dump(reason=kind)
        except Exception:
            # A full disk must not turn one shed into a crash loop.
            self._dump_failures += 1


def install_signal_dump(recorder: FlightRecorder, signum=None) -> bool:
    """Install a SIGUSR2 handler that dumps ``recorder`` on demand.

    Returns ``False`` (and installs nothing) off the main thread or on
    platforms without ``SIGUSR2`` — callers treat the signal hook as
    opportunistic sugar, never a requirement.
    """
    import signal

    if threading.current_thread() is not threading.main_thread():
        return False
    if signum is None:
        signum = getattr(signal, "SIGUSR2", None)
        if signum is None:
            return False

    def _handler(_signum, _frame):
        recorder.dump(reason="signal")

    signal.signal(signum, _handler)
    return True
