"""Per-tenant SLOs: rolling latency sketches, error budgets, burn rates.

A million-user front door is not run on averages; it is run on
*objectives* — "99% of requests finish under 250 ms" — and on how fast
each tenant is spending the error budget that objective implies.  This
module provides:

* :class:`RollingSketch` — a log-bucket latency sketch over a rolling
  time window, built from the same exponential bucket boundaries as
  :class:`~repro.obs.metrics.Histogram` so storage stays O(buckets) and
  sketches **merge across shards** by summing counts (identical bounds
  by construction).  The window is a ring of fixed-duration slices;
  expired slices are zeroed lazily, so neither observe nor quantile ever
  scans history.
* :class:`SLO` — one objective: a latency threshold, a target fraction,
  and the error budget that falls out (``1 - objective``).  A request is
  *bad* when it errors or exceeds the threshold; the **burn rate** is
  ``bad_fraction / budget``: 1.0 spends the budget exactly on schedule,
  10 spends it ten times too fast.
* :class:`SLOEngine` — per-tenant tracking with **multi-window burn
  evaluation** (the SRE alerting pattern: act only when both a fast and
  a slow window burn, so one blip doesn't page and a real regression
  can't hide between samples).  :meth:`SLOEngine.burning` is the hook
  the fair scheduler and admission controller consult when SLO-aware
  shedding is enabled: tenants torching their budget shed first under
  overload.

Everything is msgpack-safe through :meth:`SLOEngine.snapshot`, so burn
state rides the existing ``stats``/``health`` endpoints and the
Prometheus exporter unchanged.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.obs.metrics import exponential_buckets

__all__ = ["RollingSketch", "SLO", "SLOEngine", "DEFAULT_SLO"]


class RollingSketch:
    """Log-bucket latency quantiles over a rolling window.

    The window is split into ``slices`` equal sub-windows; each holds a
    bucket-count row.  Observations land in the current slice; queries
    merge every non-expired slice.  Advancing is lazy and O(slices).
    """

    def __init__(self, window: float = 60.0, slices: int = 6,
                 buckets: tuple[float, ...] | None = None,
                 clock: Callable[[], float] = time.monotonic):
        if window <= 0 or slices < 1:
            raise ReproError(
                f"invalid sketch spec window={window} slices={slices}"
            )
        self.buckets = (
            tuple(buckets) if buckets is not None
            else exponential_buckets(1e-4, 4.0, 10)
        )
        self.window = float(window)
        self.slices = int(slices)
        self._slice_dur = self.window / self.slices
        self._clock = clock
        self._lock = threading.Lock()
        # One row per slice; trailing column is the +Inf bucket.
        self._rows = [[0] * (len(self.buckets) + 1) for _ in range(slices)]
        self._row_epoch = [-1] * slices  # which slice-index each row holds
        self._count = [0] * slices
        self._sum = [0.0] * slices

    def _row_for_now_locked(self) -> int:
        epoch = int(self._clock() / self._slice_dur)
        idx = epoch % self.slices
        if self._row_epoch[idx] != epoch:
            self._rows[idx] = [0] * (len(self.buckets) + 1)
            self._count[idx] = 0
            self._sum[idx] = 0.0
            self._row_epoch[idx] = epoch
        return idx

    def observe(self, value: float) -> None:
        bucket = bisect_left(self.buckets, value)
        with self._lock:
            idx = self._row_for_now_locked()
            self._rows[idx][bucket] += 1
            self._count[idx] += 1
            self._sum[idx] += value

    def _live_rows_locked(self) -> list[int]:
        now_epoch = int(self._clock() / self._slice_dur)
        return [
            i for i in range(self.slices)
            if self._row_epoch[i] >= 0
            and now_epoch - self._row_epoch[i] < self.slices
        ]

    def merged(self) -> dict:
        """Window totals: bucket counts, count, sum (msgpack-safe)."""
        with self._lock:
            live = self._live_rows_locked()
            counts = [0] * (len(self.buckets) + 1)
            total, acc = 0, 0.0
            for i in live:
                row = self._rows[i]
                for j, c in enumerate(row):
                    counts[j] += c
                total += self._count[i]
                acc += self._sum[i]
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "count": total,
            "sum": acc,
        }

    def quantile(self, q: float, merged: dict | None = None) -> float:
        """Bucket-resolution quantile over the current window."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        data = merged if merged is not None else self.merged()
        total = data["count"]
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for idx, c in enumerate(data["counts"]):
            seen += c
            if seen >= rank:
                return self.buckets[min(idx, len(self.buckets) - 1)]
        return self.buckets[-1]

    @staticmethod
    def merge_dicts(dicts: list[dict]) -> dict:
        """Sum ``merged()`` dicts from peer shards (identical bounds)."""
        out: dict | None = None
        for d in dicts:
            if not d or not d.get("buckets"):
                continue
            if out is None:
                out = {
                    "buckets": list(d["buckets"]),
                    "counts": list(d["counts"]),
                    "count": int(d["count"]),
                    "sum": float(d["sum"]),
                }
                continue
            if list(d["buckets"]) != out["buckets"]:
                continue  # foreign bounds cannot be merged losslessly
            out["counts"] = [a + b for a, b in zip(out["counts"], d["counts"])]
            out["count"] += int(d["count"])
            out["sum"] += float(d["sum"])
        return out or {"buckets": [], "counts": [], "count": 0, "sum": 0.0}


@dataclass(frozen=True)
class SLO:
    """One objective: latency threshold + target fraction.

    ``objective=0.99, latency=0.25`` reads "99% of requests answer in
    under 250 ms"; the error budget is the remaining 1%.  A request is
    bad when it errors *or* overruns the threshold — shed replies count
    as bad too (the client asked and was refused).
    """

    latency: float = 0.25
    objective: float = 0.99

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ReproError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.latency <= 0:
            raise ReproError(f"latency must be > 0, got {self.latency}")

    @property
    def budget(self) -> float:
        """Allowed bad fraction (``1 - objective``)."""
        return 1.0 - self.objective


DEFAULT_SLO = SLO()


class _WindowCounts:
    """Rolling (total, bad) counters over a sliced window."""

    __slots__ = ("window", "slices", "_slice_dur", "_clock", "_totals",
                 "_bads", "_epochs")

    def __init__(self, window: float, slices: int, clock):
        self.window = float(window)
        self.slices = int(slices)
        self._slice_dur = self.window / self.slices
        self._clock = clock
        self._totals = [0] * self.slices
        self._bads = [0] * self.slices
        self._epochs = [-1] * self.slices

    def add(self, bad: bool) -> None:
        epoch = int(self._clock() / self._slice_dur)
        idx = epoch % self.slices
        if self._epochs[idx] != epoch:
            self._totals[idx] = 0
            self._bads[idx] = 0
            self._epochs[idx] = epoch
        self._totals[idx] += 1
        if bad:
            self._bads[idx] += 1

    def totals(self) -> tuple[int, int]:
        now_epoch = int(self._clock() / self._slice_dur)
        total = bad = 0
        for i in range(self.slices):
            if self._epochs[i] >= 0 and now_epoch - self._epochs[i] < self.slices:
                total += self._totals[i]
                bad += self._bads[i]
        return total, bad


class _TenantState:
    __slots__ = ("name", "slo", "sketch", "fast", "slow", "total", "bad",
                 "slo_sheds")

    def __init__(self, name: str, slo: SLO, fast_window: float,
                 slow_window: float, slices: int, clock):
        self.name = name
        self.slo = slo
        self.sketch = RollingSketch(
            window=slow_window, slices=slices, clock=clock
        )
        self.fast = _WindowCounts(fast_window, slices, clock)
        self.slow = _WindowCounts(slow_window, slices, clock)
        self.total = 0
        self.bad = 0
        self.slo_sheds = 0


class SLOEngine:
    """Per-tenant SLO tracking with multi-window burn-rate evaluation.

    Parameters
    ----------
    slo:
        Default objective for every tenant.
    objectives:
        Optional ``{tenant: SLO}`` overrides.
    fast_window, slow_window:
        The two burn-evaluation horizons (seconds).  Short enough to
        react, long enough not to flap; defaults suit a live demo —
        production deployments pass minutes/hours.
    burn_threshold:
        Burn rate both windows must exceed before :meth:`burning`
        reports a tenant (1.0 = budget spent exactly on schedule).
    min_requests:
        Below this many requests in the fast window a tenant is never
        reported burning: tiny samples make meaningless fractions.
    clock:
        Injectable monotonic clock (tests use a fake).
    """

    def __init__(
        self,
        slo: SLO = DEFAULT_SLO,
        objectives: dict[str, SLO] | None = None,
        fast_window: float = 30.0,
        slow_window: float = 300.0,
        slices: int = 6,
        burn_threshold: float = 1.0,
        min_requests: int = 10,
        clock: Callable[[], float] = time.monotonic,
    ):
        if fast_window <= 0 or slow_window < fast_window:
            raise ReproError(
                f"need 0 < fast_window <= slow_window, got "
                f"{fast_window}/{slow_window}"
            )
        self.slo = slo
        self.objectives = dict(objectives or {})
        self.fast_window = float(fast_window)
        self.slow_window = float(slow_window)
        self.slices = int(slices)
        self.burn_threshold = float(burn_threshold)
        self.min_requests = int(min_requests)
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}

    def _tenant(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            with self._lock:
                state = self._tenants.get(name)
                if state is None:
                    state = _TenantState(
                        name, self.objectives.get(name, self.slo),
                        self.fast_window, self.slow_window, self.slices,
                        self._clock,
                    )
                    self._tenants[name] = state
        return state

    # -- feed -------------------------------------------------------------
    def observe(self, tenant: str, latency: float, error: bool = False) -> None:
        """Record one finished request for ``tenant``.

        ``error`` covers handler failures and sheds; a slow success past
        the latency threshold is equally budget-burning.
        """
        state = self._tenant(tenant)
        bad = bool(error) or latency > state.slo.latency
        state.sketch.observe(latency)
        state.fast.add(bad)
        state.slow.add(bad)
        state.total += 1
        if bad:
            state.bad += 1

    def record_slo_shed(self, tenant: str) -> None:
        """Count a request shed *because* of this engine's verdict."""
        self._tenant(tenant).slo_sheds += 1

    # -- evaluate ---------------------------------------------------------
    @staticmethod
    def _burn(total: int, bad: int, budget: float) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / budget

    def burn_rates(self, tenant: str) -> tuple[float, float]:
        """(fast, slow) burn rates for ``tenant`` right now."""
        state = self._tenant(tenant)
        ft, fb = state.fast.totals()
        st, sb = state.slow.totals()
        budget = state.slo.budget
        return self._burn(ft, fb, budget), self._burn(st, sb, budget)

    def burning(self, tenant: str) -> bool:
        """True when *both* windows burn past the threshold.

        This is the multi-window rule: the fast window proves the
        problem is happening now, the slow window proves it is not a
        blip.  Tenants the engine has never seen are not burning.
        """
        state = self._tenants.get(tenant)
        if state is None:
            return False
        ft, fb = state.fast.totals()
        if ft < self.min_requests:
            return False
        fast, slow = self.burn_rates(tenant)
        return fast > self.burn_threshold and slow > self.burn_threshold

    def tenant_state(self, tenant: str) -> dict:
        """Full burn picture for one tenant (msgpack-safe)."""
        state = self._tenant(tenant)
        fast, slow = self.burn_rates(tenant)
        ft, fb = state.fast.totals()
        merged = state.sketch.merged()
        return {
            "objective": state.slo.objective,
            "latency_slo": state.slo.latency,
            "budget": state.slo.budget,
            "total": state.total,
            "bad": state.bad,
            "window_total": ft,
            "window_bad": fb,
            "burn_fast": fast,
            "burn_slow": slow,
            "burning": self.burning(tenant),
            "slo_sheds": state.slo_sheds,
            "p50": state.sketch.quantile(0.50, merged),
            "p99": state.sketch.quantile(0.99, merged),
            "sketch": merged,
        }

    def snapshot(self) -> dict:
        """Registry-collector form: every tenant's burn state."""
        with self._lock:
            names = list(self._tenants)
        return {
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "burn_threshold": self.burn_threshold,
            "tenants": {name: self.tenant_state(name) for name in names},
        }
