"""Trace and metrics exporters: JSONL, Chrome trace events, Prometheus text.

Three consumers, three formats:

* :func:`write_jsonl` — one span dict per line; greppable, streamable,
  and the stable on-disk archive format,
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON Perfetto and ``chrome://tracing`` load directly:
  complete ("ph": "X") events in microseconds, with the span's process
  mapped to a pid track and its thread to a tid row, plus instant
  events for span events (retries, cache hits),
* :func:`prometheus_text` — the text exposition format for a
  :meth:`~repro.obs.metrics.Registry.snapshot`, so any scraper (or
  human with curl) can read the unified counters.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

__all__ = [
    "span_dicts",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "escape_label_value",
]


def span_dicts(spans: Iterable) -> list[dict]:
    """Normalize a mix of Span objects and plain dicts to dicts."""
    return [s if isinstance(s, dict) else s.to_dict() for s in spans]


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def write_jsonl(spans: Iterable, fh_or_path: IO | str) -> int:
    """Write one JSON object per span per line; returns the span count."""
    dicts = span_dicts(spans)
    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w", encoding="utf-8") as fh:
            return write_jsonl(dicts, fh)
    for d in dicts:
        fh_or_path.write(json.dumps(d, sort_keys=True) + "\n")
    return len(dicts)


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------

def _us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace(spans: Iterable) -> dict:
    """Render spans as a Chrome trace-event object for Perfetto.

    Each distinct span ``process`` becomes a pid with a
    ``process_name`` metadata record; each span is a complete event on
    its recorded thread.  Span events become instant ("ph": "i") events
    at their wall timestamp so retries and cache hits show up as marks
    on the timeline.
    """
    dicts = span_dicts(spans)
    pids: dict[str, int] = {}
    events: list[dict] = []
    for d in dicts:
        process = str(d.get("process", "?"))
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        tid = int(d.get("thread_id", 0)) % 1_000_000
        args = {
            "trace_id": d.get("trace_id"),
            "span_id": d.get("span_id"),
            "parent_id": d.get("parent_id"),
            **(d.get("attrs") or {}),
        }
        if d.get("error"):
            args["error"] = d["error"]
        sim = d.get("start_sim")
        if sim is not None and d.get("end_sim") is not None:
            args["sim_seconds"] = d["end_sim"] - sim
        start = float(d.get("start_wall", 0.0))
        end = float(d.get("end_wall", start))
        events.append({
            "name": str(d.get("name", "?")),
            "cat": "span",
            "ph": "X",
            "ts": _us(start),
            "dur": max(0.0, _us(end - start)),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for ev in d.get("events") or []:
            events.append({
                "name": str(ev.get("name", "event")),
                "cat": "event",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": _us(float(ev.get("wall", start))),
                "pid": pid,
                "tid": tid,
                "args": {k: v for k, v in ev.items() if k not in ("name", "wall")},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable, path: str) -> int:
    """Write the Chrome-trace JSON for ``spans``; returns the event count."""
    trace = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _sanitize(name: str) -> str:
    out = [c if c.isalnum() or c == "_" else "_" for c in name]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == float("inf"):
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def escape_label_value(value) -> str:
    """Escape a label value per the exposition format: backslash first,
    then double quote and newline — the three characters the grammar
    reserves inside ``label="..."``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and newline (quotes are legal)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


#: Per-tenant numeric fields of the SLO collector exported as labeled
#: gauges (``repro_slo_burn_fast{tenant="..."} 12.3``).
_SLO_TENANT_FIELDS = (
    "burn_fast", "burn_slow", "burning", "window_total", "window_bad",
    "slo_sheds", "p50", "p99",
)


def prometheus_text(snapshot: dict) -> str:
    """Text exposition of a :meth:`Registry.snapshot` dict.

    Counters emit as ``<ns>_<name>_total`` (the conventional suffix,
    added once — names already ending in ``_total`` are left alone);
    gauges as ``<ns>_<name>``; histograms as the cumulative
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet.  Every typed
    family gets a ``# HELP`` line (the instrument's help text when the
    snapshot carries one, else a generated description).  Collector
    dicts flatten to ``<ns>_<collector>_<key>`` with non-numeric values
    skipped — except the SLO collector's per-tenant states, which emit
    as labeled gauges with the tenant name escaped per the grammar.
    """
    ns = _sanitize(str(snapshot.get("namespace", "repro")))
    helps = snapshot.get("help") or {}
    lines: list[str] = []

    def _head(metric: str, kind: str, raw_name: str, fallback: str) -> None:
        text = helps.get(raw_name) or fallback
        lines.append(f"# HELP {metric} {_escape_help(text)}")
        lines.append(f"# TYPE {metric} {kind}")

    for name, value in sorted((snapshot.get("counters") or {}).items()):
        base = _sanitize(name)
        metric = f"{ns}_{base}" if base.endswith("_total") else f"{ns}_{base}_total"
        _head(metric, "counter", name, f"Total count of {name}.")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        metric = f"{ns}_{_sanitize(name)}"
        _head(metric, "gauge", name, f"Current value of {name}.")
        lines.append(f"{metric} {_fmt(value)}")
    for name, hist in sorted((snapshot.get("histograms") or {}).items()):
        metric = f"{ns}_{_sanitize(name)}"
        _head(metric, "histogram", name, f"Distribution of {name}.")
        cumulative = 0
        for bucket in hist.get("buckets", []):
            cumulative += int(bucket.get("count", 0))
            le = bucket.get("le")
            le_txt = "+Inf" if le == "+Inf" else _fmt(float(le))
            lines.append(f'{metric}_bucket{{le="{le_txt}"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(float(hist.get('sum', 0.0)))}")
        lines.append(f"{metric}_count {int(hist.get('count', 0))}")
    for source, values in sorted((snapshot.get("collected") or {}).items()):
        if not isinstance(values, dict):
            continue
        tenants = values.get("tenants")
        if source == "slo" and isinstance(tenants, dict):
            for field in _SLO_TENANT_FIELDS:
                for tenant, state in sorted(tenants.items()):
                    if not isinstance(state, dict) or field not in state:
                        continue
                    value = state[field]
                    if isinstance(value, bool):
                        value = int(value)
                    if not isinstance(value, (int, float)):
                        continue
                    lines.append(
                        f'{ns}_slo_{_sanitize(field)}'
                        f'{{tenant="{escape_label_value(tenant)}"}} '
                        f"{_fmt(value)}"
                    )
        for key, value in sorted(values.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            lines.append(f"{ns}_{_sanitize(source)}_{_sanitize(key)} {_fmt(value)}")
    return "\n".join(lines) + "\n"
