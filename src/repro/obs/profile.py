"""Sampling profiler: continuous, whole-process, flamegraph-ready.

Deterministic tracing answers "what did this request do"; only a
*sampling* profiler answers "where does this process spend its time",
including the GIL-bound hot loops, codec inner loops, and lock waits no
request-scoped span covers.  :class:`SamplingProfiler` runs a daemon
thread that wakes at a configurable Hz, grabs ``sys._current_frames()``
(one C-level dict fetch — no per-frame tracing hooks, unlike
``sys.settrace``), walks each thread's stack, and accumulates counts per
*collapsed stack*: the ``pkg.mod:func;pkg.mod:func`` semicolon format
every flamegraph renderer (Brendan Gregg's ``flamegraph.pl``, speedscope,
``inferno``) consumes directly.

At the default 67 Hz each sample costs a handful of microseconds, so the
profiler stays on in production under the same <5% overhead gate as the
flight recorder (``benchmarks/test_ext_obs_overhead.py``).  The server
exposes the aggregate through a ``profile`` RPC endpoint; ``repro prof
<addr>`` pulls it live and writes a ``.collapsed`` file.
"""

from __future__ import annotations

import sys
import threading
import time

__all__ = ["SamplingProfiler", "NullProfiler", "NULL_PROFILER"]


class NullProfiler:
    """Inert stand-in so callers can start/stop/snapshot unconditionally."""

    enabled = False
    running = False

    def __bool__(self) -> bool:
        return False

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def snapshot(self, top: int | None = None) -> dict:
        return {"enabled": False, "samples": 0, "stacks": {}}

    def collapsed(self, top: int | None = None) -> str:
        return ""

    def info(self) -> dict:
        return {"enabled": False}


NULL_PROFILER = NullProfiler()


def _frame_stack(frame, depth_limit: int) -> str:
    """Collapse one frame chain into ``outer;...;inner`` notation."""
    parts: list[str] = []
    while frame is not None and len(parts) < depth_limit:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Background statistical profiler over ``sys._current_frames()``.

    Parameters
    ----------
    hz:
        Samples per second.  67 (a prime-ish non-divisor of common timer
        periods) avoids resonating with periodic work; 0 disables.
    depth_limit:
        Max frames kept per stack — deep recursions are truncated at the
        *inner* end so the hot leaf is always retained.
    skip_idle:
        Drop stacks whose leaf is a known idle wait (selector poll,
        queue get, lock acquire in the profiler itself), keeping the
        flamegraph about work, not waiting.  The raw sample count still
        includes them so overhead math stays honest.
    clock:
        Injectable monotonic clock (tests use a fake for ``info()``
        timing; the sampling cadence itself always uses real sleeps).
    """

    enabled = True

    _IDLE_LEAVES = frozenset({
        "selectors:select",
        "threading:wait",
        "threading:_wait_for_tstate_lock",
        "queue:get",
        "socket:accept",
        "time:sleep",
    })

    def __init__(self, hz: float = 67.0, depth_limit: int = 64,
                 skip_idle: bool = True, clock=time.monotonic):
        if hz < 0:
            raise ValueError(f"hz must be >= 0, got {hz}")
        self.hz = float(hz)
        self.depth_limit = int(depth_limit)
        self.skip_idle = bool(skip_idle)
        self._clock = clock
        self._lock = threading.Lock()
        self._stacks: dict[str, int] = {}
        self._samples = 0
        self._idle_samples = 0
        self._started_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __bool__(self) -> bool:
        return True

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the sampler thread (idempotent; no-op at hz=0)."""
        if self.hz == 0 or self.running:
            return
        self._stop.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 1.0) -> None:
        """Stop sampling; retained counts survive for a final snapshot."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)
        self._thread = None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample(me)

    # -- sampling ----------------------------------------------------------
    def _sample(self, skip_ident: int | None = None) -> None:
        frames = sys._current_frames()
        collapsed: list[str] = []
        idle = 0
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            stack = _frame_stack(frame, self.depth_limit)
            if not stack:
                continue
            if self.skip_idle and stack.rsplit(";", 1)[-1] in self._IDLE_LEAVES:
                idle += 1
                continue
            collapsed.append(stack)
        with self._lock:
            self._samples += 1
            self._idle_samples += idle
            for stack in collapsed:
                self._stacks[stack] = self._stacks.get(stack, 0) + 1

    # -- reading -----------------------------------------------------------
    def snapshot(self, top: int | None = None) -> dict:
        """Aggregate stack counts (msgpack-safe), hottest first."""
        with self._lock:
            samples = self._samples
            idle = self._idle_samples
            items = sorted(
                self._stacks.items(), key=lambda kv: kv[1], reverse=True
            )
        if top is not None:
            items = items[:top]
        elapsed = (
            self._clock() - self._started_at
            if self._started_at is not None else 0.0
        )
        return {
            "enabled": True,
            "hz": self.hz,
            "samples": samples,
            "idle_samples": idle,
            "elapsed": elapsed,
            "stacks": dict(items),
        }

    def collapsed(self, top: int | None = None) -> str:
        """Flamegraph-collapsed text: one ``stack count`` line per stack."""
        snap = self.snapshot(top=top)
        return "\n".join(
            f"{stack} {count}" for stack, count in snap["stacks"].items()
        )

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._idle_samples = 0
        self._started_at = self._clock()

    def info(self) -> dict:
        """Summary for ``health``/``stats`` collectors (no stacks)."""
        with self._lock:
            samples = self._samples
            distinct = len(self._stacks)
        return {
            "enabled": True,
            "running": self.running,
            "hz": self.hz,
            "samples": samples,
            "distinct_stacks": distinct,
        }
