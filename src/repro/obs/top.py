"""`repro top`: a live ops console over every shard's ``stats`` endpoint.

One terminal view of a whole cluster: the poller calls the ``stats`` RPC
of every address (through the same :class:`~repro.rpc.pool.EndpointPool`
the scatter–gather client uses, so breakers and retries are per shard),
the :class:`TopModel` turns consecutive snapshots into *rates* (requests
per second needs two samples), and :func:`render` draws the merged
per-shard and per-tenant tables.  The model and renderer are pure —
snapshots in, rows/text out — so tests drive them with dict fixtures and
never open a socket.

Output contract (``--once --json``): :meth:`TopModel.view` is a plain
dict, stable enough to script against — per-shard rows, per-tenant rows
merged across shards, and the cluster totals line.
"""

from __future__ import annotations

import time

__all__ = ["TopModel", "render", "poll_stats", "run_top"]


def poll_stats(pool, addresses: list[str]) -> list[dict]:
    """Call ``stats`` on every endpoint; errors become rows, not raises.

    Each row also carries the *client-side* breaker state for its
    endpoint (``pool.endpoint_state``) — an open breaker is visible even
    while the poll itself still succeeds through a half-open probe, and
    it is the console's earliest signal that hedges/failovers are about
    to route around a shard.
    """
    state_of = getattr(pool, "endpoint_state", lambda i: "none")
    polls = []
    for i, address in enumerate(addresses):
        try:
            snapshot = pool.client(i).call("stats")
            polls.append({"address": address, "snapshot": snapshot,
                          "breaker": state_of(i)})
        except Exception as exc:
            polls.append({
                "address": address,
                "error": f"{type(exc).__name__}: {exc}",
                "breaker": state_of(i),
            })
    return polls


def _hist_quantile(hist: dict, q: float) -> float:
    """Bucket-resolution quantile of a snapshot histogram dict."""
    count = int(hist.get("count", 0))
    if count == 0:
        return 0.0
    rank = q * count
    seen = 0
    last = 0.0
    for bucket in hist.get("buckets", []):
        le = bucket.get("le")
        seen += int(bucket.get("count", 0))
        if le != "+Inf":
            last = float(le)
        if seen >= rank:
            return last if le == "+Inf" else float(le)
    return last


def _cache_rates(collected: dict) -> tuple[int, int]:
    """(served, total) lookups summed over both storage-side caches."""
    served = total = 0
    for label in ("array_cache", "selection_cache"):
        cache = collected.get(label) or {}
        if not cache.get("enabled", False):
            continue
        hits = int(cache.get("hits", 0))
        coalesced = int(cache.get("coalesced", 0))
        misses = int(cache.get("misses", 0))
        served += hits + coalesced
        total += hits + coalesced + misses
    return served, total


class TopModel:
    """Folds successive poll results into a renderable cluster view.

    Request *rates* are first-difference: ``(requests_now - requests_prev)
    / dt`` per address, so the first poll shows totals with rate 0 and
    every later poll shows live throughput.
    """

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._prev: dict[str, tuple[float, float]] = {}

    def view(self, polls: list[dict]) -> dict:
        """One renderable cluster state from one round of polls."""
        now = self._clock()
        shards = []
        edges = []
        tenants: dict[str, dict] = {}
        total_requests = total_rate = total_pending = total_inflight = 0.0
        total_shed = 0
        for poll in polls:
            address = poll["address"]
            if "error" in poll:
                shards.append({"address": address, "status": "unreachable",
                               "error": poll["error"],
                               "breaker": poll.get("breaker", "none")})
                continue
            snap = poll.get("snapshot") or {}
            counters = snap.get("counters") or {}
            collected = snap.get("collected") or {}
            requests = float(counters.get("requests", 0))
            prev = self._prev.get(address)
            rate = 0.0
            if prev is not None and now > prev[0]:
                rate = max(0.0, (requests - prev[1]) / (now - prev[0]))
            self._prev[address] = (now, requests)
            edge = collected.get("edge") or {}
            if edge.get("kind") == "edge":
                # An edge cache answered this address: it gets an EDGE row
                # (hit rate, coherence traffic, upstream health) instead of
                # a SHARD row — its counters mean different things.
                hists = snap.get("histograms") or {}
                latency = hists.get("request_latency_seconds") or {}
                edges.append({
                    "address": address,
                    "status": "ok",
                    "requests": int(requests),
                    "rate": rate,
                    "hit_rate": edge.get("hit_rate"),
                    "revalidations": int(edge.get("revalidations", 0)),
                    "invalidations": int(edge.get("invalidations", 0)),
                    "negative_hits": int(edge.get("negative_hits", 0)),
                    "stale_served": int(edge.get("stale_served", 0)),
                    "upstream_errors": int(edge.get("upstream_errors", 0)),
                    "local_computes": int(edge.get("local_computes", 0)),
                    "p50": _hist_quantile(latency, 0.50),
                    "p99": _hist_quantile(latency, 0.99),
                    "breaker": poll.get("breaker", "none"),
                })
                total_requests += requests
                total_rate += rate
                continue
            admission = collected.get("admission") or {}
            fair = collected.get("fair_queue") or {}
            pending = int(fair.get("pending", admission.get("pending", 0)))
            inflight = int(fair.get("inflight", admission.get("inflight", 0)))
            shed = int(admission.get("shed", 0))
            served_hits, lookups = _cache_rates(collected)
            hists = snap.get("histograms") or {}
            latency = hists.get("request_latency_seconds") or {}
            row = {
                "address": address,
                "status": "ok",
                "requests": int(requests),
                "rate": rate,
                "pending": pending,
                "inflight": inflight,
                "shed": shed,
                "cache_hit_rate": (served_hits / lookups) if lookups else None,
                "p50": _hist_quantile(latency, 0.50),
                "p99": _hist_quantile(latency, 0.99),
                "integrity_failures": int(
                    counters.get("integrity_failures", 0)),
                "breaker": poll.get("breaker", "none"),
                "hedged": int(counters.get("hedged_requests", 0)),
                "failover": int(counters.get("failover_requests", 0)),
            }
            shards.append(row)
            total_requests += requests
            total_rate += rate
            total_pending += pending
            total_inflight += inflight
            total_shed += shed
            # Per-tenant rows: fair-queue service + SLO burn, merged
            # across shards by tenant name.
            for name, t in (fair.get("tenants") or {}).items():
                row = tenants.setdefault(name, {
                    "tenant": name, "served": 0, "pending": 0,
                    "inflight": 0, "shed": 0, "weight": t.get("weight", 1.0),
                    "burn_fast": 0.0, "burn_slow": 0.0, "burning": False,
                    "slo_sheds": 0,
                })
                row["served"] += int(t.get("served", 0))
                row["pending"] += int(t.get("pending", 0))
                row["inflight"] += int(t.get("inflight", 0))
                row["shed"] += int(t.get("shed", 0))
            slo = collected.get("slo") or {}
            for name, state in (slo.get("tenants") or {}).items():
                row = tenants.setdefault(name, {
                    "tenant": name, "served": 0, "pending": 0,
                    "inflight": 0, "shed": 0, "weight": 1.0,
                    "burn_fast": 0.0, "burn_slow": 0.0, "burning": False,
                    "slo_sheds": 0,
                })
                # Burn is a fraction, not a count: across shards the worst
                # shard dominates the tenant's experience.
                row["burn_fast"] = max(
                    row["burn_fast"], float(state.get("burn_fast", 0.0)))
                row["burn_slow"] = max(
                    row["burn_slow"], float(state.get("burn_slow", 0.0)))
                row["burning"] = row["burning"] or bool(state.get("burning"))
                row["slo_sheds"] += int(state.get("slo_sheds", 0))
        return {
            "shards": shards,
            "edges": edges,
            "tenants": sorted(tenants.values(), key=lambda r: r["tenant"]),
            "totals": {
                "requests": int(total_requests),
                "rate": total_rate,
                "pending": int(total_pending),
                "inflight": int(total_inflight),
                "shed": total_shed,
                "reachable": sum(1 for s in shards if s["status"] == "ok"),
                "shards": len(shards),
                "edges": len(edges),
            },
        }


def _pct(value) -> str:
    return "-" if value is None else f"{100.0 * value:.0f}%"


def render(view: dict) -> str:
    """Draw one cluster view as fixed-width tables (pure text out)."""
    totals = view["totals"]
    lines = [
        f"cluster: {totals['reachable']}/{totals['shards']} shards up   "
        f"{totals['rate']:.1f} req/s   "
        f"pending {totals['pending']}  inflight {totals['inflight']}  "
        f"shed {totals['shed']}  requests {totals['requests']}",
        "",
        f"{'SHARD':<22}{'STATE':<12}{'BRKR':<10}{'REQ/S':>8}{'PEND':>6}"
        f"{'INFL':>6}{'SHED':>7}{'HEDGE':>7}{'FO':>5}{'CACHE':>7}"
        f"{'P50':>9}{'P99':>9}",
    ]
    for shard in view["shards"]:
        if shard["status"] != "ok":
            lines.append(
                f"{shard['address']:<22}{'unreachable':<12}"
                f"{shard.get('breaker', 'none'):<10}"
                f"{shard.get('error', '')}"
            )
            continue
        lines.append(
            f"{shard['address']:<22}{shard['status']:<12}"
            f"{shard.get('breaker', 'none'):<10}"
            f"{shard['rate']:>8.1f}{shard['pending']:>6}"
            f"{shard['inflight']:>6}{shard['shed']:>7}"
            f"{shard.get('hedged', 0):>7}{shard.get('failover', 0):>5}"
            f"{_pct(shard['cache_hit_rate']):>7}"
            f"{shard['p50'] * 1e3:>7.1f}ms{shard['p99'] * 1e3:>7.1f}ms"
        )
    if view.get("edges"):
        lines += [
            "",
            f"{'EDGE':<22}{'STATE':<12}{'BRKR':<10}{'REQ/S':>8}{'HIT':>6}"
            f"{'REVAL':>7}{'INVAL':>7}{'NEG':>6}{'STALE':>7}{'UPERR':>7}"
            f"{'LOCAL':>7}{'P50':>9}{'P99':>9}",
        ]
        for edge in view["edges"]:
            lines.append(
                f"{edge['address']:<22}{edge['status']:<12}"
                f"{edge.get('breaker', 'none'):<10}"
                f"{edge['rate']:>8.1f}{_pct(edge['hit_rate']):>6}"
                f"{edge['revalidations']:>7}{edge['invalidations']:>7}"
                f"{edge['negative_hits']:>6}{edge['stale_served']:>7}"
                f"{edge['upstream_errors']:>7}{edge['local_computes']:>7}"
                f"{edge['p50'] * 1e3:>7.1f}ms{edge['p99'] * 1e3:>7.1f}ms"
            )
    if view["tenants"]:
        lines += [
            "",
            f"{'TENANT':<16}{'SERVED':>8}{'PEND':>6}{'INFL':>6}{'SHED':>7}"
            f"{'BURN(F)':>9}{'BURN(S)':>9}{'SLO':>9}",
        ]
        for t in view["tenants"]:
            slo_col = "BURNING" if t["burning"] else "ok"
            if t["slo_sheds"]:
                slo_col += f"+{t['slo_sheds']}"
            lines.append(
                f"{t['tenant']:<16}{t['served']:>8}{t['pending']:>6}"
                f"{t['inflight']:>6}{t['shed']:>7}"
                f"{t['burn_fast']:>9.2f}{t['burn_slow']:>9.2f}"
                f"{slo_col:>9}"
            )
    return "\n".join(lines)


def run_top(
    addresses: list[str],
    interval: float = 2.0,
    iterations: int | None = None,
    once: bool = False,
    as_json: bool = False,
    out=None,
    pool=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """Poll + render loop (the `repro top` engine).

    ``once`` polls a single round and exits; ``as_json`` prints the raw
    view dict instead of tables.  ``pool`` is injectable for tests;
    by default a TCP :class:`~repro.rpc.pool.EndpointPool` dials
    ``addresses``.  Returns 0 when every shard answered the final poll.
    """
    import json as _json
    import sys

    from repro.rpc.pool import EndpointPool

    out = out if out is not None else sys.stdout
    own_pool = pool is None
    if own_pool:
        pool = EndpointPool.connect_tcp(addresses)
    model = TopModel(clock=clock)
    view = {}
    try:
        rounds = 1 if once else iterations
        n = 0
        while True:
            view = model.view(poll_stats(pool, addresses))
            if as_json:
                out.write(_json.dumps(view, sort_keys=True) + "\n")
            else:
                # Clear-screen escape only when live-looping on a TTY.
                if not once and getattr(out, "isatty", lambda: False)():
                    out.write("\x1b[2J\x1b[H")
                out.write(render(view) + "\n")
            out.flush()
            n += 1
            if once or (rounds is not None and n >= rounds):
                break
            try:
                sleep(interval)
            except KeyboardInterrupt:
                break
    finally:
        if own_pool:
            pool.close()
    totals = view.get("totals") or {}
    return 0 if totals.get("reachable", 0) == totals.get("shards", -1) else 1
