"""Named metric instruments and the unified registry.

Before this module the repo's counters were scattered: ``CacheStats``
per cache, ``ResilienceStats`` per transport, ``ByteCounter`` in the
storage layer, ad-hoc dicts in ``NDPServer._stats``.  A
:class:`Registry` pulls them behind one surface: code creates named
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
(get-or-create, so callsites never coordinate), legacy stats objects
attach as *collectors* (any zero-arg callable returning a flat dict),
and :meth:`Registry.snapshot` renders everything as one plain-dict
tree — msgpack-safe, so a server can ship its whole registry over RPC
in one call.

Histograms use exponential bucket boundaries by default (microseconds
to minutes), matching how request latencies actually spread.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "Registry", "exponential_buckets"]


def exponential_buckets(start: float = 1e-4, factor: float = 4.0,
                        count: int = 10) -> tuple[float, ...]:
    """Bucket upper bounds ``start * factor**i`` — the latency default
    spans 100 µs to ~26 s in 10 buckets."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ReproError(
            f"invalid bucket spec start={start} factor={factor} count={count}"
        )
    return tuple(start * factor**i for i in range(count))


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, cache occupancy)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram with a sum and count (Prometheus style).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists, so every observation lands somewhere.
    """

    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None,
                 help: str = ""):
        self.name = name
        self.help = help
        bounds = tuple(buckets) if buckets is not None else exponential_buckets()
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ReproError(f"histogram buckets must be strictly increasing: {bounds}")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; +Inf bucket reports the last bound)."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for idx, c in enumerate(counts):
            seen += c
            if seen >= rank:
                return self.buckets[min(idx, len(self.buckets) - 1)]
        return self.buckets[-1]

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "buckets": [
                    {"le": b, "count": c}
                    for b, c in zip(self.buckets, self._counts)
                ] + [{"le": "+Inf", "count": self._counts[-1]}],
                "sum": self._sum,
                "count": self._count,
            }


class Registry:
    """Get-or-create instrument registry plus legacy-stats collectors.

    ``register(name, fn)`` attaches any zero-arg callable returning a
    dict — ``CacheStats.as_dict``, ``ResilienceStats.as_dict``,
    ``ByteCounter.as_dict`` — so existing stats objects surface in
    :meth:`snapshot` without being rewritten.
    """

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name, help)
            return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, help)
            return inst

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  help: str = "") -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, buckets, help)
            return inst

    def register(self, name: str, collector: Callable[[], dict]) -> None:
        """Attach a legacy stats source under ``name`` (last one wins)."""
        if not callable(collector):
            raise ReproError(f"collector for {name!r} is not callable")
        with self._lock:
            self._collectors[name] = collector

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One plain-dict view of every instrument and collector.

        Collector failures surface as ``{"error": ...}`` under their
        name instead of breaking the whole snapshot: a stats endpoint
        must stay up even when one source is sick.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        collected = {}
        for name, fn in collectors.items():
            try:
                collected[name] = dict(fn())
            except Exception as exc:
                collected[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "namespace": self.namespace,
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.as_dict() for n, h in histograms.items()},
            "collected": collected,
        }
