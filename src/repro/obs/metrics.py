"""Named metric instruments and the unified registry.

Before this module the repo's counters were scattered: ``CacheStats``
per cache, ``ResilienceStats`` per transport, ``ByteCounter`` in the
storage layer, ad-hoc dicts in ``NDPServer._stats``.  A
:class:`Registry` pulls them behind one surface: code creates named
:class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
(get-or-create, so callsites never coordinate), legacy stats objects
attach as *collectors* (any zero-arg callable returning a flat dict),
and :meth:`Registry.snapshot` renders everything as one plain-dict
tree — msgpack-safe, so a server can ship its whole registry over RPC
in one call.

Histograms use exponential bucket boundaries by default (microseconds
to minutes), matching how request latencies actually spread.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "exponential_buckets",
    "merge_snapshots",
]


def exponential_buckets(start: float = 1e-4, factor: float = 4.0,
                        count: int = 10) -> tuple[float, ...]:
    """Bucket upper bounds ``start * factor**i`` — the latency default
    spans 100 µs to ~26 s in 10 buckets."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ReproError(
            f"invalid bucket spec start={start} factor={factor} count={count}"
        )
    return tuple(start * factor**i for i in range(count))


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, cache occupancy)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram with a sum and count (Prometheus style).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists, so every observation lands somewhere.

    Each bucket also keeps one **exemplar**: the identifying fields
    (trace id, msgid) of the *slowest* observation that landed in it.
    That turns a mute "+Inf count: 3" into a clickable pointer — the
    p999 bucket links straight to a dumpable trace.
    """

    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum",
                 "_count", "_exemplars")

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None,
                 help: str = ""):
        self.name = name
        self.help = help
        bounds = tuple(buckets) if buckets is not None else exponential_buckets()
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ReproError(f"histogram buckets must be strictly increasing: {bounds}")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._exemplars: list[dict | None] = [None] * (len(bounds) + 1)

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                held = self._exemplars[idx]
                if held is None or value >= held["value"]:
                    self._exemplars[idx] = {"value": value, **exemplar}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; +Inf bucket reports the last bound)."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for idx, c in enumerate(counts):
            seen += c
            if seen >= rank:
                return self.buckets[min(idx, len(self.buckets) - 1)]
        return self.buckets[-1]

    def as_dict(self) -> dict:
        with self._lock:
            buckets = [
                {"le": b, "count": c}
                for b, c in zip(self.buckets, self._counts)
            ] + [{"le": "+Inf", "count": self._counts[-1]}]
            for slot, ex in zip(buckets, self._exemplars):
                if ex is not None:
                    slot["exemplar"] = dict(ex)
            return {
                "buckets": buckets,
                "sum": self._sum,
                "count": self._count,
            }


class Registry:
    """Get-or-create instrument registry plus legacy-stats collectors.

    ``register(name, fn)`` attaches any zero-arg callable returning a
    dict — ``CacheStats.as_dict``, ``ResilienceStats.as_dict``,
    ``ByteCounter.as_dict`` — so existing stats objects surface in
    :meth:`snapshot` without being rewritten.
    """

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name, help)
            return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, help)
            return inst

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  help: str = "") -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, buckets, help)
            return inst

    def register(self, name: str, collector: Callable[[], dict]) -> None:
        """Attach a legacy stats source under ``name`` (last one wins)."""
        if not callable(collector):
            raise ReproError(f"collector for {name!r} is not callable")
        with self._lock:
            self._collectors[name] = collector

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One plain-dict view of every instrument and collector.

        Collector failures surface as ``{"error": ...}`` under their
        name instead of breaking the whole snapshot: a stats endpoint
        must stay up even when one source is sick.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        collected = {}
        for name, fn in collectors.items():
            try:
                collected[name] = dict(fn())
            except Exception as exc:
                collected[name] = {"error": f"{type(exc).__name__}: {exc}"}
        helps = {
            n: inst.help
            for group in (counters, gauges, histograms)
            for n, inst in group.items() if inst.help
        }
        return {
            "namespace": self.namespace,
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.as_dict() for n, h in histograms.items()},
            "collected": collected,
            "help": helps,
        }


# ---------------------------------------------------------------------------
# Cross-shard merging
# ---------------------------------------------------------------------------

def _merge_histogram_dicts(a: dict, b: dict) -> dict:
    """Sum two ``Histogram.as_dict`` payloads with identical bounds;
    on mismatched bounds the first operand wins (foreign shards cannot
    be merged losslessly).  Exemplars keep the slower of the pair."""
    a_les = [bk.get("le") for bk in a.get("buckets", [])]
    b_les = [bk.get("le") for bk in b.get("buckets", [])]
    if a_les != b_les:
        return a
    buckets = []
    for ba, bb in zip(a["buckets"], b["buckets"]):
        merged = {"le": ba["le"],
                  "count": int(ba.get("count", 0)) + int(bb.get("count", 0))}
        ex_a, ex_b = ba.get("exemplar"), bb.get("exemplar")
        ex = max(
            (e for e in (ex_a, ex_b) if e is not None),
            key=lambda e: e.get("value", 0.0), default=None,
        )
        if ex is not None:
            merged["exemplar"] = dict(ex)
        buckets.append(merged)
    return {
        "buckets": buckets,
        "sum": float(a.get("sum", 0.0)) + float(b.get("sum", 0.0)),
        "count": int(a.get("count", 0)) + int(b.get("count", 0)),
    }


def _merge_numeric_tree(a: dict, b: dict) -> dict:
    """Recursively sum matching numeric leaves; non-numeric leaves keep
    the first value seen.  Used for collector dicts across shards."""
    out = dict(a)
    for key, bval in b.items():
        aval = out.get(key)
        if aval is None:
            out[key] = bval
        elif isinstance(aval, dict) and isinstance(bval, dict):
            out[key] = _merge_numeric_tree(aval, bval)
        elif (isinstance(aval, (int, float)) and not isinstance(aval, bool)
              and isinstance(bval, (int, float)) and not isinstance(bval, bool)):
            out[key] = aval + bval
    return out


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge :meth:`Registry.snapshot` dicts from peer shards into one.

    Counters and gauges sum by name; histograms sum bucket-wise (the
    bounds are identical across shards by construction); collector trees
    sum their numeric leaves.  The result has the same shape as a single
    snapshot, so every renderer — tables, :func:`prometheus_text` —
    works on a whole cluster unchanged.
    """
    snapshots = [s for s in snapshots if s]
    if not snapshots:
        return {"namespace": "repro", "counters": {}, "gauges": {},
                "histograms": {}, "collected": {}}
    out = {
        "namespace": snapshots[0].get("namespace", "repro"),
        "counters": dict(snapshots[0].get("counters") or {}),
        "gauges": dict(snapshots[0].get("gauges") or {}),
        "histograms": {
            n: dict(h) for n, h in (snapshots[0].get("histograms") or {}).items()
        },
        "collected": dict(snapshots[0].get("collected") or {}),
        "help": dict(snapshots[0].get("help") or {}),
        "merged_from": 1,
    }
    for snap in snapshots[1:]:
        for name, value in (snap.get("counters") or {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        for name, value in (snap.get("gauges") or {}).items():
            out["gauges"][name] = out["gauges"].get(name, 0) + value
        for name, hist in (snap.get("histograms") or {}).items():
            held = out["histograms"].get(name)
            out["histograms"][name] = (
                _merge_histogram_dicts(held, hist) if held else dict(hist)
            )
        out["collected"] = _merge_numeric_tree(
            out["collected"], snap.get("collected") or {}
        )
        for name, text in (snap.get("help") or {}).items():
            out["help"].setdefault(name, text)
        out["merged_from"] += 1
    return out
