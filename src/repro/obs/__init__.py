"""Observability: end-to-end tracing, metrics, and exporters.

The paper's evaluation is one long load-time breakdown; this package is
the instrumentation that produces such breakdowns from live runs instead
of hand-placed timers:

* :mod:`repro.obs.trace` — span-based tracing over wall *and* simulated
  clocks, with trace-context propagation across the RPC boundary so a
  single contour request yields one client+server tree,
* :mod:`repro.obs.metrics` — named Counter/Gauge/Histogram instruments
  and a :class:`Registry` that absorbs the legacy ``CacheStats`` /
  ``ResilienceStats`` / ``ByteCounter`` objects behind one
  ``snapshot()``,
* :mod:`repro.obs.export` — JSONL span logs, Chrome trace-event JSON
  (Perfetto-loadable), and Prometheus text exposition.

Everything defaults to off: :data:`~repro.obs.trace.NULL_TRACER` is a
reused no-op, so un-traced hot paths pay a single attribute read.
"""

from repro.obs.export import (
    chrome_trace,
    escape_label_value,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flightrec import (
    DEFAULT_TRIGGERS,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    install_signal_dump,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    exponential_buckets,
    merge_snapshots,
)
from repro.obs.profile import NULL_PROFILER, NullProfiler, SamplingProfiler
from repro.obs.slo import DEFAULT_SLO, SLO, RollingSketch, SLOEngine
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, new_id

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "new_id",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "exponential_buckets",
    "merge_snapshots",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "prometheus_text",
    "escape_label_value",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "DEFAULT_TRIGGERS",
    "install_signal_dump",
    "SLO",
    "DEFAULT_SLO",
    "SLOEngine",
    "RollingSketch",
    "SamplingProfiler",
    "NullProfiler",
    "NULL_PROFILER",
]
