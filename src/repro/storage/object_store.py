"""The object store: this library's MinIO substitute.

An S3-flavoured bucket/object store with the operations the paper's
pipeline actually exercises through s3fs: PUT whole objects, ranged GETs,
HEAD, and LIST.  Two backends:

* :class:`MemoryBackend` — a dict, used by tests and benchmarks,
* :class:`DirectoryBackend` — one file per object under a root directory,
  used by the examples and the cross-process demos.

A store may carry a :class:`~repro.storage.netsim.DeviceModel`; every byte
served is then charged to it, modelling MinIO reading from its local SSD.
An :class:`ObjectStoreServer` exposes a store over the RPC layer so a
client-side mount can reach it across a (real or simulated) network hop.
"""

from __future__ import annotations

import os
import re
import threading
from abc import ABC, abstractmethod

from repro.errors import NoSuchBucketError, NoSuchObjectError, StorageError
from repro.rpc.server import RPCServer

__all__ = [
    "ObjectStore",
    "MemoryBackend",
    "DirectoryBackend",
    "ObjectStoreServer",
    "RemoteObjectStore",
]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-/]*$")


def _check_name(kind: str, name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name) or ".." in name:
        raise StorageError(f"invalid {kind} name {name!r}")
    return name


class Backend(ABC):
    """Raw byte storage under (bucket, key) pairs."""

    def version(self, bucket: str, key: str) -> tuple:
        """A token that changes whenever the object's content may have.

        Caches key their entries by it (the "store mtime/version"
        invalidation rule).  The base fallback is size-only — weaker than
        the mtime/generation tokens the concrete backends return, but
        safe for any backend that only implements the abstract surface.
        """
        return ("size", self.size(bucket, key))

    @abstractmethod
    def create_bucket(self, bucket: str) -> None: ...

    @abstractmethod
    def bucket_exists(self, bucket: str) -> bool: ...

    @abstractmethod
    def put(self, bucket: str, key: str, data: bytes) -> None: ...

    @abstractmethod
    def get(self, bucket: str, key: str, offset: int, length: int | None) -> bytes: ...

    @abstractmethod
    def size(self, bucket: str, key: str) -> int: ...

    @abstractmethod
    def list_keys(self, bucket: str, prefix: str) -> list[str]: ...

    @abstractmethod
    def delete(self, bucket: str, key: str) -> None: ...


class MemoryBackend(Backend):
    """Objects held in process memory."""

    def __init__(self):
        self._buckets: dict[str, dict[str, bytes]] = {}
        self._lock = threading.Lock()
        self._generation = 0
        self._versions: dict[tuple[str, str], int] = {}

    def create_bucket(self, bucket: str) -> None:
        with self._lock:
            self._buckets.setdefault(bucket, {})

    def bucket_exists(self, bucket: str) -> bool:
        return bucket in self._buckets

    def _bucket(self, bucket: str) -> dict[str, bytes]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise NoSuchBucketError(f"no bucket {bucket!r}") from None

    def put(self, bucket: str, key: str, data: bytes) -> None:
        with self._lock:
            self._bucket(bucket)[key] = bytes(data)
            self._generation += 1
            self._versions[(bucket, key)] = self._generation

    def version(self, bucket: str, key: str) -> tuple:
        with self._lock:
            size = len(self._object(bucket, key))
            return ("gen", self._versions.get((bucket, key), 0), size)

    def _object(self, bucket: str, key: str) -> bytes:
        objects = self._bucket(bucket)
        try:
            return objects[key]
        except KeyError:
            raise NoSuchObjectError(f"no object {bucket}/{key}") from None

    def get(self, bucket: str, key: str, offset: int, length: int | None) -> bytes:
        data = self._object(bucket, key)
        end = len(data) if length is None else offset + length
        return data[offset:end]

    def size(self, bucket: str, key: str) -> int:
        return len(self._object(bucket, key))

    def list_keys(self, bucket: str, prefix: str) -> list[str]:
        return sorted(k for k in self._bucket(bucket) if k.startswith(prefix))

    def delete(self, bucket: str, key: str) -> None:
        with self._lock:
            objects = self._bucket(bucket)
            if key not in objects:
                raise NoSuchObjectError(f"no object {bucket}/{key}")
            del objects[key]
            self._versions.pop((bucket, key), None)


class DirectoryBackend(Backend):
    """One file per object under ``root/bucket/key``."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _bucket_dir(self, bucket: str) -> str:
        return os.path.join(self.root, bucket)

    def _path(self, bucket: str, key: str) -> str:
        bdir = self._bucket_dir(bucket)
        if not os.path.isdir(bdir):
            raise NoSuchBucketError(f"no bucket {bucket!r}")
        return os.path.join(bdir, key)

    def create_bucket(self, bucket: str) -> None:
        os.makedirs(self._bucket_dir(bucket), exist_ok=True)

    def bucket_exists(self, bucket: str) -> bool:
        return os.path.isdir(self._bucket_dir(bucket))

    def put(self, bucket: str, key: str, data: bytes) -> None:
        path = self._path(bucket, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)

    def get(self, bucket: str, key: str, offset: int, length: int | None) -> bytes:
        path = self._path(bucket, key)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                return fh.read() if length is None else fh.read(length)
        except FileNotFoundError:
            raise NoSuchObjectError(f"no object {bucket}/{key}") from None

    def size(self, bucket: str, key: str) -> int:
        try:
            return os.path.getsize(self._path(bucket, key))
        except FileNotFoundError:
            raise NoSuchObjectError(f"no object {bucket}/{key}") from None

    def version(self, bucket: str, key: str) -> tuple:
        try:
            st = os.stat(self._path(bucket, key))
        except FileNotFoundError:
            raise NoSuchObjectError(f"no object {bucket}/{key}") from None
        return ("mtime", st.st_mtime_ns, st.st_size)

    def list_keys(self, bucket: str, prefix: str) -> list[str]:
        bdir = self._bucket_dir(bucket)
        if not os.path.isdir(bdir):
            raise NoSuchBucketError(f"no bucket {bucket!r}")
        keys = []
        for dirpath, _dirs, files in os.walk(bdir):
            for fname in files:
                if fname.endswith(".tmp"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fname), bdir)
                key = rel.replace(os.sep, "/")
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    def delete(self, bucket: str, key: str) -> None:
        try:
            os.remove(self._path(bucket, key))
        except FileNotFoundError:
            raise NoSuchObjectError(f"no object {bucket}/{key}") from None


class ObjectStore:
    """Bucket/object store with optional device-cost accounting.

    Parameters
    ----------
    backend:
        Byte storage; defaults to a fresh :class:`MemoryBackend`.
    device:
        Optional :class:`~repro.storage.netsim.DeviceModel`; every GET is
        charged to it (the MinIO-reads-its-SSD cost in the paper's setups).
    """

    def __init__(self, backend: Backend | None = None, device=None):
        self.backend = backend if backend is not None else MemoryBackend()
        self.device = device

    # ------------------------------------------------------------------
    def create_bucket(self, bucket: str) -> None:
        self.backend.create_bucket(_check_name("bucket", bucket))

    def bucket_exists(self, bucket: str) -> bool:
        return self.backend.bucket_exists(bucket)

    def put_object(self, bucket: str, key: str, data: bytes) -> None:
        _check_name("bucket", bucket)
        _check_name("key", key)
        data = bytes(data)
        if self.device is not None:
            self.device.write(len(data))
        self.backend.put(bucket, key, data)

    def get_object(self, bucket: str, key: str, offset: int = 0, length: int | None = None) -> bytes:
        if offset < 0 or (length is not None and length < 0):
            raise StorageError(f"invalid range offset={offset} length={length}")
        data = self.backend.get(bucket, key, offset, length)
        if self.device is not None:
            self.device.read(len(data))
        return data

    def head_object(self, bucket: str, key: str) -> int:
        """Return the object's size in bytes."""
        return self.backend.size(bucket, key)

    def object_version(self, bucket: str, key: str) -> tuple:
        """Version token for cache invalidation (mtime/generation + size)."""
        return tuple(self.backend.version(bucket, key))

    def list_objects(self, bucket: str, prefix: str = "") -> list[str]:
        return self.backend.list_keys(bucket, prefix)

    def delete_object(self, bucket: str, key: str) -> None:
        self.backend.delete(bucket, key)


class ObjectStoreServer:
    """Exposes an :class:`ObjectStore` over the RPC layer (MinIO's socket)."""

    def __init__(self, store: ObjectStore):
        self.store = store
        self.rpc = RPCServer(
            {
                "get_object": self._get,
                "head_object": store.head_object,
                "list_objects": store.list_objects,
                "put_object": store.put_object,
                "object_version": self._version,
            }
        )

    def _version(self, bucket: str, key: str) -> list:
        return list(self.store.object_version(bucket, key))

    def _get(self, bucket: str, key: str, offset: int, length) -> bytes:
        return self.store.get_object(bucket, key, offset, length)

    @property
    def dispatch(self):
        return self.rpc.dispatch

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        return self.rpc.serve_tcp(host=host, port=port)


class RemoteObjectStore:
    """Client-side proxy to an :class:`ObjectStoreServer` over a transport."""

    def __init__(self, client):
        self._client = client

    def get_object(self, bucket, key, offset=0, length=None):
        return self._client.call("get_object", bucket, key, offset, length)

    def head_object(self, bucket, key):
        return self._client.call("head_object", bucket, key)

    def list_objects(self, bucket, prefix=""):
        return self._client.call("list_objects", bucket, prefix)

    def put_object(self, bucket, key, data):
        return self._client.call("put_object", bucket, key, data)

    def object_version(self, bucket, key):
        from repro.errors import RPCRemoteError

        try:
            return tuple(self._client.call("object_version", bucket, key))
        except RPCRemoteError as exc:
            # An older server without the endpoint: degrade to size-only.
            if "no such method" in str(exc):
                return ("size", self.head_object(bucket, key))
            raise
