"""Phase timers and byte counters for load-time breakdowns.

The paper measures "the time required for a pipeline to prepare data in
memory for contour generation" broken into read, decompress, filter, and
transfer components (Sec. VI).  :class:`LoadBreakdown` is that record;
:class:`PhaseTimer` fills it from a :class:`~repro.storage.netsim.SimClock`.

:class:`ResilienceStats` is the observability side of the fault-tolerant
transport (:mod:`repro.rpc.resilience`): it counts retries, timeouts,
breaker trips, and baseline fallbacks, plus the extra bytes the fallback
path pulled — the cost of *not* offloading when the NDP hop is down.

:class:`CacheStats` is the observability side of the storage-side caches
(:mod:`repro.storage.cache`): hits, misses, evictions, and coalesced
(single-flight) waiters, surfaced through ``server_stats``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "ByteCounter",
    "CacheStats",
    "PhaseTimer",
    "LoadBreakdown",
    "ResilienceStats",
]


class CacheStats:
    """Thread-safe hit/miss/eviction/coalesced counters for one cache.

    ``coalesced`` counts requests that piggybacked on another thread's
    in-flight load (single-flight request coalescing) instead of reading
    the store themselves; ``hits + misses + coalesced`` is the total
    number of lookups.
    """

    _FIELDS = ("hits", "misses", "evictions", "coalesced")

    def __init__(self, name: str = "cache"):
        self.name = name
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self._FIELDS, 0)

    def record(self, event: str, n: int = 1) -> None:
        if event not in self._counts:
            raise ReproError(f"unknown cache event {event!r}; use {self._FIELDS}")
        if n < 0:
            raise ReproError(f"cannot record {n} occurrences of {event!r}")
        with self._lock:
            self._counts[event] += n

    def get(self, event: str) -> int:
        if event not in self._counts:
            # Same contract as record(): an unknown event name is a typo
            # at the callsite, not a zero — fail loudly either direction.
            raise ReproError(f"unknown cache event {event!r}; use {self._FIELDS}")
        with self._lock:
            return self._counts[event]

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a store load (hit or coalesced)."""
        with self._lock:
            served = self._counts["hits"] + self._counts["coalesced"]
            total = served + self._counts["misses"]
        return served / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.as_dict().items()))
        return f"CacheStats({self.name!r}, {inner})"


class ByteCounter:
    """Counts bytes attributed to named categories.

    Thread-safe, like its ``CacheStats``/``ResilienceStats`` siblings:
    the read-modify-write in :meth:`add` is reachable from the threaded
    TCP server path, where unlocked ``dict.get``+assign pairs can lose
    increments under contention.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def add(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ReproError(f"cannot count {nbytes} bytes")
        with self._lock:
            self._counts[category] = self._counts.get(category, 0) + nbytes

    def get(self, category: str) -> int:
        with self._lock:
            return self._counts.get(category, 0)

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


class ResilienceStats:
    """Event counters for the resilient NDP path.

    One instance is typically shared between a
    :class:`~repro.rpc.resilience.ResilientTransport` (which records
    ``attempts``/``retries``/``failures``/``successes``/``timeouts``/
    ``breaker_trips``/``breaker_rejections``) and a
    :class:`~repro.core.ndp_client.FallbackPolicy` (which records
    ``fallbacks``, ``fallback_bytes``, and ``ndp_successes``).  Thread-safe:
    the TCP client may retry from several threads.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._events: dict[str, int] = {}
        #: human-readable reason for the most recent baseline fallback
        self.last_fallback_reason: str | None = None

    def record(self, event: str, n: int = 1) -> None:
        if n < 0:
            raise ReproError(f"cannot record {n} occurrences of {event!r}")
        with self._lock:
            self._events[event] = self._events.get(event, 0) + n

    def get(self, event: str) -> int:
        with self._lock:
            return self._events.get(event, 0)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self._events)

    @property
    def fallback_rate(self) -> float:
        """Fraction of completed NDP requests served by the baseline path."""
        with self._lock:
            fallbacks = self._events.get("fallbacks", 0)
            done = fallbacks + self._events.get("ndp_successes", 0)
        return fallbacks / done if done else 0.0

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.as_dict().items()))
        return f"ResilienceStats({inner})"


@dataclass
class LoadBreakdown:
    """Per-phase simulated seconds for one data-load operation."""

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ReproError(f"negative phase time {seconds} for {phase!r}")
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def merge(self, other: "LoadBreakdown") -> "LoadBreakdown":
        out = LoadBreakdown(dict(self.phases))
        for phase, seconds in other.phases.items():
            out.add(phase, seconds)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.phases.items()))
        return f"LoadBreakdown(total={self.total:.4f}s, {inner})"


class PhaseTimer:
    """Attributes simulated-clock deltas to named phases.

    Usage::

        timer = PhaseTimer(clock)
        with timer.phase("read"):
            ssd.read(nbytes)          # advances the clock
        breakdown = timer.breakdown

    Nesting records **exclusive (self) time**: a ``phase`` block's
    attribution excludes any interval covered by phases nested inside
    it, so the breakdown's total always equals the real clock interval
    — the same well-defined semantics the span tracer
    (:mod:`repro.obs.trace`) assumes when it renders self-time per
    phase.  (Previously a nested block's interval was double-counted
    into both phases, silently inflating totals.)
    """

    def __init__(self, clock):
        self._clock = clock
        self.breakdown = LoadBreakdown()
        self._stack: list[_PhaseContext] = []

    def phase(self, name: str):
        return _PhaseContext(self, name)


class _PhaseContext:
    def __init__(self, timer: PhaseTimer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0
        self._child_time = 0.0

    def __enter__(self):
        self._start = self._timer._clock.now
        self._timer._stack.append(self)
        return self

    def __exit__(self, *exc):
        elapsed = self._timer._clock.now - self._start
        stack = self._timer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            # The enclosing phase must not count this interval again.
            stack[-1]._child_time += elapsed
        self._timer.breakdown.add(self._name, max(0.0, elapsed - self._child_time))
