"""Storage substrate: object store, file mount layer, and cost models.

Substitutes for the paper's testbed pieces:

* :class:`~repro.storage.object_store.ObjectStore` — the MinIO stand-in,
* :class:`~repro.storage.s3fs.S3FileSystem` — the s3fs stand-in: a
  file-like mount over an object store reached through a transport,
* :mod:`~repro.storage.netsim` — simulated clock + device/link models that
  reproduce the paper's 1 GbE / local-SSD cost structure on one machine,
* :mod:`~repro.storage.metrics` — phase timers and byte counters that
  benches aggregate into the paper's "data load time" breakdowns,
* :mod:`~repro.storage.cache` — storage-side LRU caches with single-flight
  coalescing, the NDP server's shield against repeated and concurrent
  reads of one object.
"""

from repro.storage.cache import ArrayCache, SelectionCache, SingleFlightCache
from repro.storage.metrics import (
    ByteCounter,
    CacheStats,
    LoadBreakdown,
    PhaseTimer,
    ResilienceStats,
)
from repro.storage.netsim import (
    PAPER_TESTBED,
    CodecTiming,
    DeviceModel,
    LinkModel,
    SimClock,
    Testbed,
)
from repro.storage.object_store import DirectoryBackend, MemoryBackend, ObjectStore
from repro.storage.s3fs import S3File, S3FileSystem

__all__ = [
    "SimClock",
    "LinkModel",
    "DeviceModel",
    "CodecTiming",
    "Testbed",
    "PAPER_TESTBED",
    "ObjectStore",
    "MemoryBackend",
    "DirectoryBackend",
    "S3FileSystem",
    "S3File",
    "ByteCounter",
    "CacheStats",
    "PhaseTimer",
    "LoadBreakdown",
    "ResilienceStats",
    "SingleFlightCache",
    "ArrayCache",
    "SelectionCache",
]
