"""Simulated time: clock, device models, link models, testbed calibration.

The paper's experiments run on two nodes joined by 1 Gb Ethernet, with a
MinIO server reading from a local SSD.  A single-machine reproduction
cannot observe those costs for real, so benchmarks run against a
*simulated clock*: every byte that crosses a modelled device or link
advances the clock by ``latency + bytes / bandwidth``, and every CPU phase
(decompression, pre-filter scan) advances it by ``bytes / throughput``
with throughput constants calibrated against the paper's Sec. IV/VI
numbers.  The computation itself still happens for real — only *time* is
modelled — so results stay bit-correct while load times reproduce the
paper's cost structure.

Calibration (see DESIGN.md §6): the paper's 500 MB raw array loads in
~12 s through remote s3fs and the NDP raw path approaches a 2.8x speedup
bounded by local read time, which pins the effective SSD path at
~126 MB/s and the effective network path at ~63 MB/s; GZip/LZ4 effective
decompress throughputs follow from the 3.96x / 4.63x standalone speedups.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "SimClock",
    "DeviceModel",
    "LinkModel",
    "CodecTiming",
    "Testbed",
    "PAPER_TESTBED",
    "WanProfile",
    "WAN_PROFILES",
    "wan_link_pair",
    "MB",
]

MB = 1_000_000  # decimal megabyte, matching storage-vendor convention


class SimClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self):
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ReproError(f"cannot advance clock by {seconds} s")
        self._now += seconds

    def reset(self) -> None:
        self._now = 0.0


class DeviceModel:
    """A storage device: per-request latency plus bandwidth-limited reads."""

    def __init__(self, clock: SimClock, bandwidth_bps: float, latency_s: float = 0.0,
                 name: str = "device"):
        if bandwidth_bps <= 0:
            raise ReproError(f"bandwidth must be > 0, got {bandwidth_bps}")
        if latency_s < 0:
            raise ReproError(f"latency must be >= 0, got {latency_s}")
        self.clock = clock
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.name = name
        self.total_bytes = 0
        self.total_requests = 0
        self.total_time = 0.0

    def read(self, nbytes: int) -> None:
        """Charge one read of ``nbytes`` to the clock."""
        if nbytes < 0:
            raise ReproError(f"cannot read {nbytes} bytes")
        dt = self.latency_s + nbytes / self.bandwidth_bps
        self.clock.advance(dt)
        self.total_bytes += nbytes
        self.total_requests += 1
        self.total_time += dt

    # Writes share the read cost model; asymmetric devices can subclass.
    write = read

    def reset_counters(self) -> None:
        self.total_bytes = 0
        self.total_requests = 0
        self.total_time = 0.0


class LinkModel(DeviceModel):
    """A network link; ``charge`` is the transport-facing spelling of read.

    Chunked readers pipeline many transfers over one logical request, and
    a request pays the propagation latency *once* — only bandwidth scales
    with the chunk count.  Wrap the chunk loop in :meth:`request` and
    every ``charge`` after the first inside that scope is bandwidth-only;
    outside a scope each charge stands alone (latency + bytes/bandwidth),
    which keeps single-shot callers unchanged.
    """

    def __init__(self, clock: SimClock, bandwidth_bps: float, latency_s: float = 0.0,
                 name: str = "link"):
        super().__init__(clock, bandwidth_bps, latency_s, name)
        self._pipeline = threading.local()

    def charge(self, nbytes: int) -> None:
        state = self._pipeline
        if getattr(state, "depth", 0) > 0:
            if getattr(state, "latency_paid", False):
                # Follow-up chunk of a pipelined request: bandwidth only.
                dt = nbytes / self.bandwidth_bps
                self.clock.advance(dt)
                self.total_bytes += nbytes
                self.total_time += dt
                return
            state.latency_paid = True
        self.read(nbytes)

    @contextlib.contextmanager
    def request(self):
        """Scope in which chained charges pay the link latency once."""
        state = self._pipeline
        state.depth = getattr(state, "depth", 0) + 1
        try:
            yield self
        finally:
            state.depth -= 1
            if state.depth == 0:
                state.latency_paid = False


@dataclass(frozen=True)
class CodecTiming:
    """Effective codec throughputs, in bytes/second of *uncompressed* data.

    "Effective" means they fold in the reader/IO-stack overhead the paper's
    VTK pipeline experiences, which is why they sit well below the codecs'
    marketing numbers.
    """

    compress_bps: float
    decompress_bps: float


@dataclass
class Testbed:
    """A bundle of clock + device/link/CPU models for one experiment setup.

    Parameters mirror the paper's hardware: an SSD path (MinIO + local
    SSD + s3fs software stack), a client<->storage network link, and
    effective CPU throughputs for the codecs and the pre-filter scan.
    """

    __test__ = False  # not a pytest test class despite the Test* name

    ssd_bps: float = 126.0 * MB
    ssd_latency_s: float = 100e-6
    net_bps: float = 63.5 * MB
    net_latency_s: float = 200e-6
    prefilter_bps: float = 2000.0 * MB
    codec_timings: dict = field(
        default_factory=lambda: {
            "raw": CodecTiming(compress_bps=float("inf"), decompress_bps=float("inf")),
            "gzip": CodecTiming(compress_bps=60.0 * MB, decompress_bps=260.0 * MB),
            "lz4": CodecTiming(compress_bps=400.0 * MB, decompress_bps=1700.0 * MB),
            "rle": CodecTiming(compress_bps=800.0 * MB, decompress_bps=1200.0 * MB),
            "quantizer": CodecTiming(compress_bps=80.0 * MB, decompress_bps=300.0 * MB),
            # shuffle adds one byte-transpose pass over the payload
            "shuffle-lz4": CodecTiming(compress_bps=350.0 * MB, decompress_bps=1300.0 * MB),
            "shuffle-gzip": CodecTiming(compress_bps=55.0 * MB, decompress_bps=240.0 * MB),
        }
    )

    def __post_init__(self):
        self.clock = SimClock()
        self.ssd = DeviceModel(self.clock, self.ssd_bps, self.ssd_latency_s, name="ssd")
        self.net = LinkModel(self.clock, self.net_bps, self.net_latency_s, name="net")

    # ------------------------------------------------------------------
    def codec_timing(self, codec_name: str) -> CodecTiming:
        try:
            return self.codec_timings[codec_name]
        except KeyError:
            raise ReproError(
                f"no timing calibration for codec {codec_name!r}; "
                f"known: {sorted(self.codec_timings)}"
            ) from None

    def charge_decompress(self, codec_name: str, uncompressed_bytes: int) -> None:
        """Advance the clock by the modelled decompression time."""
        bps = self.codec_timing(codec_name).decompress_bps
        if bps != float("inf"):
            self.clock.advance(uncompressed_bytes / bps)

    def charge_compress(self, codec_name: str, uncompressed_bytes: int) -> None:
        bps = self.codec_timing(codec_name).compress_bps
        if bps != float("inf"):
            self.clock.advance(uncompressed_bytes / bps)

    def charge_filter_scan(self, nbytes: int) -> None:
        """Advance the clock by the modelled pre-filter scan time."""
        self.clock.advance(nbytes / self.prefilter_bps)

    def reset(self) -> None:
        """Zero the clock and all device counters."""
        self.clock.reset()
        self.ssd.reset_counters()
        self.net.reset_counters()


def PAPER_TESTBED() -> Testbed:
    """A fresh testbed with the paper-calibrated defaults (DESIGN.md §6)."""
    return Testbed()


@dataclass(frozen=True)
class WanProfile:
    """A named wide-area hop: one-way latency plus per-direction bandwidth.

    Real WANs are asymmetric (uplink from a viewer's site is usually the
    thinner pipe), so the profile carries a bandwidth per direction.  The
    ``up`` direction is client→server (requests), ``down`` is server→client
    (replies).  One *request* over the hop costs one-way latency each
    direction plus the transfer times — the :class:`LinkModel` pipelining
    scope keeps multi-chunk transfers from paying latency per chunk.
    """

    name: str
    one_way_latency_s: float
    up_bps: float
    down_bps: float

    @property
    def rtt_s(self) -> float:
        return 2.0 * self.one_way_latency_s


#: Named hop presets.  Latencies are typical great-circle one-way figures;
#: bandwidths are deliberately modest (a loaded shared path, not the line
#: rate) so the presets reproduce the "gather wire dominates again" regime
#: the edge tier exists to fix.
WAN_PROFILES: dict[str, WanProfile] = {
    "lan": WanProfile("lan", one_way_latency_s=200e-6,
                      up_bps=63.5 * MB, down_bps=63.5 * MB),
    "wan-metro": WanProfile("wan-metro", one_way_latency_s=0.008,
                            up_bps=6.25 * MB, down_bps=12.5 * MB),
    "wan-cross-country": WanProfile(
        "wan-cross-country", one_way_latency_s=0.035,
        up_bps=1.25 * MB, down_bps=2.5 * MB),
    "wan-transatlantic": WanProfile(
        "wan-transatlantic", one_way_latency_s=0.045,
        up_bps=0.625 * MB, down_bps=1.25 * MB),
}


def wan_link_pair(profile: WanProfile | str, clock: SimClock) -> tuple[LinkModel, LinkModel]:
    """(uplink, downlink) :class:`LinkModel` pair for one WAN hop.

    Each direction carries the full one-way latency, so a request/reply
    round trip over the pair costs ``profile.rtt_s`` plus transfer time —
    feed the pair to ``SimulatedTransport(..., link=up, response_link=down)``.
    """
    if isinstance(profile, str):
        try:
            profile = WAN_PROFILES[profile]
        except KeyError:
            raise ReproError(
                f"unknown WAN profile {profile!r}; known: {sorted(WAN_PROFILES)}"
            ) from None
    up = LinkModel(clock, profile.up_bps, profile.one_way_latency_s,
                   name=f"{profile.name}-up")
    down = LinkModel(clock, profile.down_bps, profile.one_way_latency_s,
                     name=f"{profile.name}-down")
    return up, down
