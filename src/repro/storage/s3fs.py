"""The s3fs substitute: file-like access to objects in a store.

The paper mounts its MinIO buckets with s3fs, "an open-source FUSE-based
solution that enables mounting remote S3 buckets and operating them as
local filesystems" (Sec. IV), and the whole NDP argument hinges on *where*
that mount lives: on the client (baseline — every byte crosses the
network) or on the storage node (NDP — reads are local).

:class:`S3FileSystem` reproduces that: it wraps anything with the
object-store read surface (:class:`~repro.storage.object_store.ObjectStore`
or :class:`~repro.storage.object_store.RemoteObjectStore`) and serves
:class:`S3File` handles whose reads are issued as ranged GETs in
``chunk_bytes`` units, like a FUSE page cache.  An optional link model
charges every fetched byte to the simulated network, which is exactly the
baseline-vs-NDP distinction the benchmarks flip.
"""

from __future__ import annotations

import contextlib
import io

from repro.errors import NoSuchBucketError, NoSuchObjectError, StorageError

__all__ = ["S3FileSystem", "S3File"]

_DEFAULT_CHUNK = 8 * 1024 * 1024


class S3FileSystem:
    """A read/write file layer over an object store.

    Parameters
    ----------
    store:
        Object-store-like: must provide ``get_object``/``head_object``/
        ``list_objects`` (and ``put_object`` for writes).
    bucket:
        The mounted bucket.
    link:
        Optional :class:`~repro.storage.netsim.LinkModel`; every byte
        fetched through this mount is charged to it.  Use for the
        *baseline* placement (s3fs remote from MinIO); leave ``None`` for
        the NDP placement (s3fs colocated with MinIO).
    chunk_bytes:
        Ranged-GET granularity; mimics s3fs's readahead window.
    """

    def __init__(self, store, bucket: str, link=None, chunk_bytes: int = _DEFAULT_CHUNK):
        if chunk_bytes <= 0:
            raise StorageError(f"chunk_bytes must be > 0, got {chunk_bytes}")
        self.store = store
        self.bucket = bucket
        self.link = link
        self.chunk_bytes = int(chunk_bytes)

    # ------------------------------------------------------------------
    def open(self, key: str) -> "S3File":
        """Open an object for reading."""
        size = self.store.head_object(self.bucket, key)
        return S3File(self, key, size)

    def read_object(self, key: str) -> bytes:
        """Read a whole object through the chunked path."""
        with self.open(key) as fh:
            return fh.read()

    def write_object(self, key: str, data: bytes) -> None:
        """Write a whole object (charged to the link if one is set)."""
        if self.link is not None:
            self.link.charge(len(data))
        self.store.put_object(self.bucket, key, data)

    def listdir(self, prefix: str = "") -> list[str]:
        return self.store.list_objects(self.bucket, prefix)

    def exists(self, key: str) -> bool:
        """True if the object exists, False if the store says it doesn't.

        Only the store's typed not-found errors mean ``False``; anything
        else (connection refused, auth failure, a flaky backend) is a
        *store* failure and propagates — swallowing it here would make an
        outage indistinguishable from an empty bucket and hide exactly
        the faults the resilience layer exists to handle.
        """
        try:
            self.store.head_object(self.bucket, key)
            return True
        except (NoSuchObjectError, NoSuchBucketError):
            return False

    def size(self, key: str) -> int:
        return self.store.head_object(self.bucket, key)

    def version(self, key: str) -> tuple:
        """Cache-invalidation token for one object (metadata only, no data).

        Prefers the store's ``object_version`` (mtime/generation + size);
        store-likes that only offer HEAD degrade to a size-only token.
        """
        object_version = getattr(self.store, "object_version", None)
        if object_version is not None:
            ver = object_version(self.bucket, key)
            return tuple(ver) if isinstance(ver, list) else ver
        return ("size", self.store.head_object(self.bucket, key))

    # internal: one ranged GET
    def _fetch(self, key: str, offset: int, length: int) -> bytes:
        data = self.store.get_object(self.bucket, key, offset, length)
        if self.link is not None:
            self.link.charge(len(data))
        return data


class S3File(io.RawIOBase):
    """A seekable read-only file over one object, fetched in chunks."""

    def __init__(self, fs: S3FileSystem, key: str, size: int):
        super().__init__()
        self._fs = fs
        self._key = key
        self._size = size
        self._pos = 0
        # one-chunk readahead cache, like a minimal FUSE page cache
        self._cache_start = -1
        self._cache: bytes = b""

    # -- io.RawIOBase interface ----------------------------------------
    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            pos = offset
        elif whence == io.SEEK_CUR:
            pos = self._pos + offset
        elif whence == io.SEEK_END:
            pos = self._size + offset
        else:
            raise StorageError(f"invalid whence {whence}")
        if pos < 0:
            raise StorageError(f"cannot seek to negative offset {pos}")
        self._pos = pos
        return pos

    def tell(self) -> int:
        return self._pos

    @property
    def size(self) -> int:
        return self._size

    def read(self, n: int = -1) -> bytes:
        if n is None or n < 0:
            n = self._size - self._pos
        n = max(0, min(n, self._size - self._pos))
        if n == 0:
            return b""
        out = bytearray()
        pos = self._pos
        remaining = n
        chunk_bytes = self._fs.chunk_bytes
        # A multi-chunk read is one pipelined request over the link: the
        # ranged GETs stream back-to-back, so latency is charged once.
        link = self._fs.link
        scope = link.request() if hasattr(link, "request") else contextlib.nullcontext()
        with scope:
            while remaining > 0:
                chunk_idx = pos // chunk_bytes
                chunk_start = chunk_idx * chunk_bytes
                if chunk_start != self._cache_start:
                    length = min(chunk_bytes, self._size - chunk_start)
                    self._cache = self._fs._fetch(self._key, chunk_start, length)
                    self._cache_start = chunk_start
                local = pos - chunk_start
                take = min(remaining, len(self._cache) - local)
                if take <= 0:
                    break  # object shrank under us; stop rather than spin
                out += self._cache[local : local + take]
                pos += take
                remaining -= take
        self._pos = pos
        return bytes(out)

    def readall(self) -> bytes:
        return self.read(self._size - self._pos)
