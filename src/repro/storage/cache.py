"""Storage-side caches: byte-budgeted LRU with single-flight coalescing.

Every NDP endpoint pays a full object read + decompress per request, even
when a movie client sweeps contour values over the *same* ``(key, array)``
— the exact access pattern the paper's Sec. VI evaluation loops generate.
Bethel et al.'s network-data-cache work and SkimROOT's near-storage
filtering both place a cache of decoded data next to the filter; this
module is that lever for the NDP server:

* :class:`ArrayCache` holds decoded ``(grid, entry)`` pairs keyed by
  ``(key, array, store version)`` so repeated pre-filters over one array
  skip the read + decompress phases entirely,
* :class:`SelectionCache` holds fully encoded pre-filter replies keyed by
  the complete request tuple, so *identical* requests skip the filter
  scan too.

Both are :class:`SingleFlightCache` instances: when N threads of the TCP
listener miss on the same key simultaneously, exactly one runs the loader
while the other N-1 block on its result ("single-flight" request
coalescing, after Go's ``golang.org/x/sync/singleflight``).  Without it a
popular object would stampede the store with N identical reads the moment
its entry expired.

Invalidation is by key versioning, not TTL: callers fold the store's
mtime/version token for the object into the cache key, so an overwritten
object simply misses (the stale entry ages out of the LRU tail).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.errors import ReproError
from repro.obs.trace import NULL_TRACER
from repro.storage.metrics import CacheStats

__all__ = ["SingleFlightCache", "ArrayCache", "SelectionCache"]


def _generic_sizeof(value: Any) -> int:
    """Best-effort byte size of a cached value for budget accounting."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, dict):
        return sum(_generic_sizeof(v) for v in value.values()) + 16 * len(value)
    if isinstance(value, (list, tuple)):
        return sum(_generic_sizeof(v) for v in value) or 16
    return 64  # scalars, strings, small metadata


class _InFlight:
    """One pending load: the leader fills it, waiters block on the event."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlightCache:
    """Thread-safe LRU cache with a byte budget and request coalescing.

    Parameters
    ----------
    max_bytes:
        Budget for cached values (as measured by ``sizeof``); least
        recently used entries are evicted to stay under it.
    sizeof:
        Maps a value to its charged byte size.  The default handles
        bytes/ndarray/dict-of-bytes shapes.
    name:
        Label used in stats and ``repr``.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; each lookup outcome
        (hit / miss / coalesced) is recorded as an event on the caller's
        current span, so a trace shows which phases a cache hit skipped.
    recorder:
        Optional :class:`~repro.obs.flightrec.FlightRecorder`; the same
        hit/miss/coalesced outcomes land in the always-on flight ring.
    """

    def __init__(
        self,
        max_bytes: int,
        sizeof: Callable[[Any], int] | None = None,
        name: str = "cache",
        tracer=None,
        recorder=None,
    ):
        if max_bytes <= 0:
            raise ReproError(f"cache budget must be > 0 bytes, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.name = name
        self._sizeof = sizeof if sizeof is not None else _generic_sizeof
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._inflight: dict[Hashable, _InFlight] = {}
        self._current_bytes = 0
        self.stats = CacheStats(name=name)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        from repro.obs.flightrec import NULL_RECORDER

        self.recorder = recorder if recorder is not None else NULL_RECORDER

    # ------------------------------------------------------------------
    def get_or_load(self, key: Hashable, loader: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, loading it at most once.

        On a miss the calling thread becomes the *leader* and runs
        ``loader()``; concurrent callers with the same key block until the
        leader finishes and share its result (or its exception).  Loader
        exceptions are never cached.
        """
        with self._lock:
            if key in self._entries:
                value, _ = self._entries[key]
                self._entries.move_to_end(key)
                self.stats.record("hits")
                self.tracer.add_event("cache.hit", cache=self.name)
                self.recorder.record("cache.hit", cache=self.name)
                return value
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                leader = True
                self.stats.record("misses")
                self.tracer.add_event("cache.miss", cache=self.name)
                self.recorder.record("cache.miss", cache=self.name)
            else:
                leader = False
                self.stats.record("coalesced")
                self.tracer.add_event("cache.coalesced", cache=self.name)
                self.recorder.record("cache.coalesced", cache=self.name)

        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value

        try:
            value = loader()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.value = value
        with self._lock:
            self._store(key, value)
            self._inflight.pop(key, None)
        flight.event.set()
        return value

    def _store(self, key: Hashable, value: Any) -> None:
        """Insert under the byte budget (caller holds the lock)."""
        nbytes = max(0, int(self._sizeof(value)))
        if nbytes > self.max_bytes:
            return  # would evict everything and still not fit: don't cache
        if key in self._entries:
            _, old = self._entries.pop(key)
            self._current_bytes -= old
        while self._entries and self._current_bytes + nbytes > self.max_bytes:
            _, (_, evicted) = self._entries.popitem(last=False)
            self._current_bytes -= evicted
            self.stats.record("evictions")
        self._entries[key] = (value, nbytes)
        self._current_bytes += nbytes

    # ------------------------------------------------------------------
    def peek(self, key: Hashable) -> Any | None:
        """Return the cached value without counting a hit or reordering."""
        with self._lock:
            entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._current_bytes -= entry[1]
        return entry is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> dict:
        """Counters + occupancy, in the shape ``server_stats`` exposes."""
        with self._lock:
            occupancy = {
                "entries": len(self._entries),
                "current_bytes": self._current_bytes,
                "max_bytes": self.max_bytes,
            }
        return {"enabled": True, **self.stats.as_dict(), **occupancy}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, entries={len(self)}, "
            f"bytes={self.current_bytes}/{self.max_bytes})"
        )


def _array_sizeof(value: Any) -> int:
    """Size a decoded ``(grid, entry)`` pair by its raw (decoded) bytes."""
    try:
        _grid, entry = value
    except (TypeError, ValueError):
        return _generic_sizeof(value)
    raw = getattr(entry, "raw_bytes", None)
    return int(raw) if raw else _generic_sizeof(value)


class ArrayCache(SingleFlightCache):
    """LRU over decoded array blocks: ``(key, array, version) -> (grid, entry)``.

    A hit skips the object read *and* the decompress, which is why the
    NDP server only charges those Testbed phases inside the loader.
    """

    def __init__(self, max_bytes: int, name: str = "array_cache", tracer=None,
                 recorder=None):
        super().__init__(max_bytes, sizeof=_array_sizeof, name=name,
                         tracer=tracer, recorder=recorder)


class SelectionCache(SingleFlightCache):
    """LRU over encoded pre-filter replies, keyed by the full request tuple.

    Values are the msgpack-ready reply dicts (payload already wire-encoded
    and compressed), so a hit costs no scan, no encode, and no compress.
    """

    def __init__(self, max_bytes: int, name: str = "selection_cache", tracer=None,
                 recorder=None):
        super().__init__(max_bytes, sizeof=_generic_sizeof, name=name,
                         tracer=tracer, recorder=recorder)
