"""Pipelined NDP requests for movie workloads.

The paper's Sec. VI experiment "proceeds sequentially, reading data from
the first timestep, generating a contour, and then moving on" — the
client idles while the storage node pre-filters, and vice versa.
:class:`NDPPrefetcher` overlaps them: it keeps up to ``depth`` offload
requests in flight on a worker thread while the caller post-filters and
renders the current frame, hiding storage-side latency behind client-side
compute.  Results are yielded strictly in request order.

Works with any request the batch endpoint understands (contour /
threshold / slice), one object key per request::

    requests = [
        {"key": f"ts{t:05d}.vgf", "kind": "contour",
         "array": "v02", "values": [0.1]}
        for t in timesteps
    ]
    for key, polydata, stats in NDPPrefetcher(client, requests):
        render(polydata)
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterator

from repro.core.encoding import decode_selection
from repro.core.filter_splits import postfilter_slice, postfilter_threshold
from repro.core.postfilter import postfilter_contour
from repro.errors import ReproError
from repro.grid.bounds import Bounds
from repro.grid.polydata import PolyData

__all__ = ["NDPPrefetcher"]

_KINDS = ("contour", "threshold", "slice")


def _roi_wire(roi) -> list | None:
    """A request's ``roi`` as the wire-friendly 6-float list (or None)."""
    if roi is None:
        return None
    if hasattr(roi, "as_tuple"):
        roi = roi.as_tuple()
    return [float(v) for v in roi]


class NDPPrefetcher:
    """Iterate offloaded filter results with lookahead.

    Parameters
    ----------
    client:
        An :class:`~repro.rpc.client.RPCClient` connected to an NDP server.
    requests:
        Request dicts; each needs a ``key`` plus the fields its ``kind``
        requires (see :meth:`~repro.core.ndp_server.NDPServer.prefilter_batch`).
    depth:
        Number of requests kept in flight ahead of the consumer (>= 1).
    """

    def __init__(self, client, requests: list[dict], depth: int = 2):
        if depth < 1:
            raise ReproError(f"prefetch depth must be >= 1, got {depth}")
        for req in requests:
            if "key" not in req:
                raise ReproError(f"request missing 'key': {req!r}")
            if req.get("kind", "contour") not in _KINDS:
                raise ReproError(f"unknown request kind {req.get('kind')!r}")
        self._client = client
        self._requests = list(requests)
        self._depth = depth
        # Live iterations' (pool, in_flight) state, so close() can reap
        # futures the consumer abandoned (early break, loop-body raise).
        self._active: list[tuple[ThreadPoolExecutor, list]] = []

    # ------------------------------------------------------------------
    def _issue(self, req: dict):
        kind = req.get("kind", "contour")
        common = (req.get("encoding", "auto"), req.get("wire_codec", "lz4"))
        if kind == "contour":
            return self._client.call(
                "prefilter_contour", req["key"], req["array"], list(req["values"]),
                req.get("mode", "cell-closure"), *common,
                _roi_wire(req.get("roi")),
            )
        if kind == "threshold":
            return self._client.call(
                "prefilter_threshold", req["key"], req["array"],
                float(req["lower"]), float(req["upper"]), *common,
            )
        return self._client.call(
            "prefilter_slice", req["key"], req["array"],
            int(req["axis"]), float(req["coordinate"]), *common,
        )

    @staticmethod
    def _finish(req: dict, encoded: dict) -> PolyData:
        selection = decode_selection(encoded)
        kind = req.get("kind", "contour")
        if kind == "contour":
            roi = _roi_wire(req.get("roi"))
            return postfilter_contour(
                selection, req["values"],
                roi=Bounds(*roi) if roi is not None else None,
            )
        if kind == "threshold":
            return postfilter_threshold(selection)
        return postfilter_slice(selection, int(req["axis"]), float(req["coordinate"]))

    def __iter__(self) -> Iterator[tuple[str, PolyData, dict | None]]:
        """Yield ``(key, polydata, stats)`` in request order.

        Abandoning the iterator early — ``break``, an exception in the
        consumer's loop body, or dropping the generator — does not leak
        the lookahead: pending futures are cancelled and the worker is
        shut down without waiting on requests nobody will consume.
        """
        if not self._requests:
            return
        pool = ThreadPoolExecutor(max_workers=1)
        in_flight: list[tuple[dict, Future]] = []
        state = (pool, in_flight)
        self._active.append(state)
        try:
            pending = iter(self._requests)
            # Prime the window.
            for req in self._requests[: self._depth]:
                next(pending)
                in_flight.append((req, pool.submit(self._issue, req)))
            while in_flight:
                req, future = in_flight.pop(0)
                encoded = future.result()  # propagate remote errors
                # Refill before the (potentially slow) local post-filter so
                # the server works while we do.
                try:
                    nxt = next(pending)
                except StopIteration:
                    nxt = None
                if nxt is not None:
                    in_flight.append((nxt, pool.submit(self._issue, nxt)))
                yield req["key"], self._finish(req, encoded), encoded.get("stats")
        finally:
            self._reap(state)

    # ------------------------------------------------------------------
    def _reap(self, state) -> None:
        pool, in_flight = state
        for _req, future in in_flight:
            future.cancel()
        in_flight.clear()
        # cancel_futures also drops anything queued but not yet running;
        # wait=False so an in-progress RPC cannot block the consumer's
        # exception from propagating.
        pool.shutdown(wait=False, cancel_futures=True)
        if state in self._active:
            self._active.remove(state)

    def close(self) -> None:
        """Cancel and reap any in-flight lookahead from live iterations."""
        for state in list(self._active):
            self._reap(state)

    def __enter__(self) -> "NDPPrefetcher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
