"""The client-side post-filter: sparse selection in, contour geometry out.

The paper's post-filter "takes this subarray as input and produces the
final contour" (Sec. VI).  Reconstruction here is *exact* under the
default cell-closure selection:

1. scatter the selection back onto a dense field, filling unselected
   points with ``-inf`` (never compared true, never interpolated),
2. compute the *complete-cell* mask — cells whose eight corners were all
   transferred,
3. run the stock contour kernels restricted to complete cells.

Why this equals contouring the full array (DESIGN.md §5, invariant 1):
every cell that emits geometry has mixed corner classification, hence
contains a crossing lattice edge, hence is in the pre-filter's closure —
so it arrives complete, with true values at all corners.  Complete cells
that emit nothing in the full run have identical (true) corner values
here and still emit nothing.  Incomplete cells are skipped, and are
exactly the cells that emit nothing in the full run.  The kernels visit
the same cells with the same values in the same order, so outputs match
bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.interesting import point_mask_to_cell_complete
from repro.errors import FilterError
from repro.filters.contour import contour_grid, normalize_values
from repro.grid.polydata import PolyData
from repro.grid.selection import PointSelection
from repro.pipeline.filter_base import Filter

__all__ = ["postfilter_contour", "ContourPostFilter"]


def postfilter_contour(selection: PointSelection, values, roi=None) -> PolyData:
    """Generate the contour from a pre-filtered selection.

    When the pre-filter ran with a region of interest, pass the same
    ``roi`` here; reconstruction is then bit-exact against
    ``contour_grid(grid, ..., roi=roi)``.
    """
    vals = normalize_values(values)
    grid, mask_flat = selection.to_grid(fill=-np.inf)
    nx, ny, nz = grid.dims
    point_mask = mask_flat.reshape(nz, ny, nx)
    complete = point_mask_to_cell_complete(point_mask)
    if grid.is_2d:
        # contour_grid squeezes 2-D grids; squeeze the mask the same way.
        flat_axis = grid.dims.index(1)
        if flat_axis == 2:      # nz == 1
            cell_mask = complete[0]
        elif flat_axis == 1:    # ny == 1
            cell_mask = complete[:, 0, :]
        else:                   # nx == 1
            cell_mask = complete[:, :, 0]
    else:
        cell_mask = complete
    return contour_grid(grid, selection.array_name, vals, cell_mask=cell_mask,
                        roi=roi)


class ContourPostFilter(Filter):
    """Pipeline form: :class:`PointSelection` in, :class:`PolyData` out."""

    def __init__(self, values=()):
        super().__init__()
        self._values: tuple[float, ...] = ()
        if values != () and values is not None:
            self.set_values(values)

    def set_values(self, values) -> None:
        self._values = normalize_values(values)
        self.modified()

    @property
    def values(self) -> tuple[float, ...]:
        return self._values

    def _execute(self, selection: PointSelection) -> PolyData:
        if not isinstance(selection, PointSelection):
            raise FilterError(
                f"ContourPostFilter expects a PointSelection, got "
                f"{type(selection).__name__}"
            )
        if not self._values:
            raise FilterError("ContourPostFilter has no contour values configured")
        return postfilter_contour(selection, self._values)
