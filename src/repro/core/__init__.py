"""The paper's contribution: contour pipelines split for near-data processing.

The pieces map one-to-one onto the paper's Sec. V/VI design:

* :mod:`~repro.core.interesting` — vectorized detection of *interesting
  edges* (lattice edges whose endpoints straddle a contour value) and of
  the points/cells they touch (paper Sec. II-B),
* :mod:`~repro.core.prefilter` — the storage-side pre-filter: full array
  in, sparse :class:`~repro.grid.selection.PointSelection` out,
* :mod:`~repro.core.encoding` — compact wire encodings for selections,
* :mod:`~repro.core.postfilter` — the client-side post-filter: selection
  in, contour geometry out, bit-identical to contouring the full array,
* :mod:`~repro.core.split` — splits a stock contour pipeline into the
  storage-side and client-side halves (paper Fig. 10),
* :mod:`~repro.core.ndp_server` / :mod:`~repro.core.ndp_client` — the two
  halves wired over the RPC layer,
* :mod:`~repro.core.planner` — an offload planner extension that chooses
  baseline vs NDP from cost estimates.
"""

from repro.core.encoding import decode_selection, encode_selection, wire_size
from repro.core.interesting import (
    active_cell_mask,
    cell_closure_point_mask,
    interesting_point_mask,
)
from repro.core.filter_splits import (
    postfilter_slice,
    postfilter_threshold,
    prefilter_slice,
    prefilter_threshold,
)
from repro.core.ndp_client import (
    FallbackPolicy,
    NDPContourSource,
    ndp_batch,
    ndp_cluster_contour,
    ndp_contour,
    ndp_slice,
    ndp_threshold,
)
from repro.core.ndp_server import NDPServer
from repro.core.planner import OffloadDecision, OffloadPlanner
from repro.core.prefetch import NDPPrefetcher
from repro.core.postfilter import ContourPostFilter, postfilter_contour
from repro.core.prefilter import ContourPreFilter, prefilter_contour, selection_rate
from repro.core.split import SplitContourPipeline, split_contour_filter

__all__ = [
    "interesting_point_mask",
    "active_cell_mask",
    "cell_closure_point_mask",
    "prefilter_contour",
    "selection_rate",
    "ContourPreFilter",
    "postfilter_contour",
    "ContourPostFilter",
    "encode_selection",
    "decode_selection",
    "wire_size",
    "split_contour_filter",
    "SplitContourPipeline",
    "NDPServer",
    "NDPContourSource",
    "FallbackPolicy",
    "ndp_contour",
    "ndp_threshold",
    "ndp_slice",
    "ndp_batch",
    "ndp_cluster_contour",
    "prefilter_threshold",
    "postfilter_threshold",
    "prefilter_slice",
    "postfilter_slice",
    "NDPPrefetcher",
    "OffloadPlanner",
    "OffloadDecision",
]
