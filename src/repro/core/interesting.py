"""Interesting-edge analysis: the data-selection core of the paper.

An *interesting edge* is a lattice edge whose endpoint values straddle a
contour value — "edges where one end is above 5 and the other is below 5"
in the paper's Fig. 3 walkthrough.  Only points touching such edges carry
information the downstream contour filter needs.

Three vectorized primitives operate on a scalar field shaped ``(nz, ny,
nx)`` (degenerate axes of size 1 are handled, so 2-D grids work
unchanged):

* :func:`interesting_point_mask` — points incident to at least one
  interesting edge, for any of the given contour values.  This is the
  quantity the paper's Fig. 6 reports as the *data selection rate*.
* :func:`active_cell_mask` — cells with mixed corner classification, i.e.
  cells that will emit contour geometry.
* :func:`cell_closure_point_mask` — all corners of all active cells: the
  minimal superset of the interesting-point set that lets the client
  rebuild the contour *exactly* (every cell the contour kernel visits has
  all corners present; see :mod:`repro.core.postfilter`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.filters.contour import normalize_values

__all__ = [
    "interesting_point_mask",
    "active_cell_mask",
    "cell_closure_point_mask",
    "point_mask_to_cell_complete",
    "cell_mask_to_point_mask",
    "roi_cell_mask",
]


def _as_field(field: np.ndarray) -> np.ndarray:
    f = np.asarray(field)
    if f.ndim != 3:
        raise FilterError(f"field must be 3-D (nz, ny, nx); got shape {f.shape}")
    if f.size == 0:
        raise FilterError("field is empty")
    return f


def _interval_index(f: np.ndarray, vals) -> np.ndarray:
    """Classification id per point: how many contour values lie at or below it.

    The per-value classification ``f >= v`` is monotone in ``v`` for the
    sorted, unique ``vals`` that :func:`normalize_values` produces, so the
    whole vector of booleans collapses to one integer — the count of
    values ``v <= f``.  Two neighbouring points straddle *some* contour
    value exactly when their counts differ, which turns the per-value
    edge scan into a single neighbour-diff pass regardless of
    ``len(vals)``.

    Comparisons use :func:`_native_thresholds`, which preserves exact
    float64 classification semantics (what the marching kernels compute)
    without float64 conversion buffers on float32 fields.  NaN compares
    False against every threshold, so NaN points land in class 0 — the
    same class the per-value booleans gave them.
    """
    ts = _native_thresholds(f.dtype, vals)
    if len(ts) == 1:
        # A 2-interval classification is just the inside/outside boolean.
        return f >= ts[0]
    # Strictly below the dtype max: the top code point stays free as the
    # NaN sentinel for :func:`active_cell_mask`'s class-space fold.
    count_dtype = np.uint8 if len(ts) < 255 else np.uint16
    c = (f >= ts[0]).astype(count_dtype)
    for t in ts[1:]:
        c += f >= t
    return c


def _native_thresholds(dtype, vals) -> tuple:
    """Exact per-dtype comparison thresholds for ``f >= v``.

    Naively comparing a float32 array against a plain Python float casts
    the *value* down to float32 (NEP 50), silently flipping
    classifications for values outside float32's range; comparing
    against an ``np.float64`` scalar is exact but streams the whole
    array through float64 conversion buffers.  For float32 fields the
    float64 comparison ``f >= v`` is *exactly* the native comparison
    ``f >= ceil32(v)`` — no float32 lies strictly between ``v`` and the
    smallest float32 at or above it — so the scan runs at native width
    with float64 semantics.  Other dtypes compare against float64
    scalars (exact for float64 fields and for every integer the
    supported dtypes can hold).
    """
    if np.dtype(dtype) == np.float32:
        out = []
        with np.errstate(over="ignore"):  # values beyond f32 range → ±inf
            for v in vals:
                t = np.float32(v)  # round-to-nearest; may land below v
                if float(t) < float(v):
                    t = np.nextafter(t, np.float32(np.inf))
                out.append(t)
        return tuple(out)
    return tuple(np.float64(v) for v in vals)


def interesting_point_mask(field: np.ndarray, values) -> np.ndarray:
    """Boolean mask of points incident to >= 1 interesting edge.

    Parameters
    ----------
    field:
        ``(nz, ny, nx)`` scalar field.
    values:
        One or more contour values; a point qualifies if any of its lattice
        edges crosses any value.

    Returns
    -------
    mask : ndarray of bool, same shape as ``field``.
    """
    f = _as_field(field)
    vals = normalize_values(values)
    cls = _interval_index(f, vals)
    mask = np.zeros(f.shape, dtype=bool)
    # One neighbour-diff pass per axis, however many contour values: an
    # edge is interesting iff its endpoints land in different value
    # intervals.
    for axis in range(3):
        if f.shape[axis] > 1:
            a = [slice(None)] * 3
            b = [slice(None)] * 3
            a[axis] = slice(None, -1)
            b[axis] = slice(1, None)
            cross = cls[tuple(a)] != cls[tuple(b)]
            mask[tuple(a)] |= cross
            mask[tuple(b)] |= cross
    return mask


def active_cell_mask(field: np.ndarray, values) -> np.ndarray:
    """Boolean mask of cells whose corners straddle any contour value.

    The returned shape is ``(max(nz-1,1), max(ny-1,1), max(nx-1,1))`` —
    degenerate axes keep a single layer so 2-D grids yield their pixel
    cells.
    """
    f = _as_field(field)
    vals = normalize_values(values)
    # A cell is active iff some value lands in (corner-min, corner-max],
    # i.e. the corner extremes classify into different value intervals.
    # Classification is monotone, so it commutes with min/max — classify
    # each point ONCE, then fold the per-cell extremes in class space,
    # where the elements are one or two bytes instead of the field's
    # four or eight.  The fold touches ~6x the array in memory traffic,
    # so running it narrow is most of this function's speed.
    c = _interval_index(f, vals)
    if c.dtype == bool:
        c = c.view(np.uint8)
    if f.dtype.kind == "f":
        # In the field-space fold a NaN corner propagates to both
        # extremes and classifies as interval 0 twice — the cell is
        # inactive.  Class space loses that poisoning (max ignores the
        # NaN's class 0), so NaN points take the dtype's top code point,
        # which _interval_index never assigns: any NaN corner drives the
        # max-fold to the sentinel, and the final test drops such cells.
        sentinel = np.iinfo(c.dtype).max
        c[np.isnan(f)] = sentinel
    else:
        sentinel = None
    lo = c
    hi = c
    for axis in range(3):
        if f.shape[axis] > 1:
            a = [slice(None)] * 3
            b = [slice(None)] * 3
            a[axis] = slice(None, -1)
            b[axis] = slice(1, None)
            lo = np.minimum(lo[tuple(a)], lo[tuple(b)])
            hi = np.maximum(hi[tuple(a)], hi[tuple(b)])
    active = lo != hi
    if sentinel is not None:
        active &= hi != sentinel
    return active


def cell_closure_point_mask(field: np.ndarray, values,
                            cell_mask: np.ndarray | None = None) -> np.ndarray:
    """Boolean mask of every corner point of every active cell.

    ``cell_mask`` (e.g. a region of interest) restricts which cells count
    as active.
    """
    f = _as_field(field)
    active = active_cell_mask(f, values)
    if cell_mask is not None:
        active = active & np.asarray(cell_mask, dtype=bool)
    mask = np.zeros(f.shape, dtype=bool)
    # Scatter each cell flag to its corner points: along each non-degenerate
    # axis a cell (index c) touches point layers c and c+1.
    nz, ny, nx = f.shape
    z_off = (0, 1) if nz > 1 else (0,)
    y_off = (0, 1) if ny > 1 else (0,)
    x_off = (0, 1) if nx > 1 else (0,)
    cz, cy, cx = active.shape
    for dz in z_off:
        for dy in y_off:
            for dx in x_off:
                mask[dz : dz + cz, dy : dy + cy, dx : dx + cx] |= active
    return mask


def cell_mask_to_point_mask(cell_mask: np.ndarray, point_shape) -> np.ndarray:
    """Scatter a cell mask to the corner points it touches (closure shape)."""
    cell_mask = np.asarray(cell_mask, dtype=bool)
    nz, ny, nx = point_shape
    mask = np.zeros(point_shape, dtype=bool)
    cz, cy, cx = cell_mask.shape
    for dz in (0, 1) if nz > 1 else (0,):
        for dy in (0, 1) if ny > 1 else (0,):
            for dx in (0, 1) if nx > 1 else (0,):
                mask[dz : dz + cz, dy : dy + cy, dx : dx + cx] |= cell_mask
    return mask


def roi_cell_mask(grid, bounds) -> np.ndarray:
    """Cells whose corners all lie inside an axis-aligned world box.

    Used to restrict contouring (and its offload) to a region of
    interest; shape conventions match :func:`active_cell_mask`.
    """
    lo = (bounds.xmin, bounds.ymin, bounds.zmin)
    hi = (bounds.xmax, bounds.ymax, bounds.zmax)
    nx, ny, nz = grid.dims
    in_box = np.ones((nz, ny, nx), dtype=bool)
    # Broadcast per-axis coordinate membership onto the point lattice.
    shapes = ((1, 1, nx), (1, ny, 1), (nz, 1, 1))
    for axis in range(3):
        coords = np.asarray(grid.axis_coords(axis))
        ok = (coords >= lo[axis]) & (coords <= hi[axis])
        in_box &= ok.reshape(shapes[axis])
    return point_mask_to_cell_complete(in_box)


def point_mask_to_cell_complete(point_mask: np.ndarray) -> np.ndarray:
    """Cells whose every corner point is present in ``point_mask``.

    The post-filter's admission rule: only *complete* cells are contoured.
    Shape conventions match :func:`active_cell_mask`.
    """
    m = np.asarray(point_mask, dtype=bool)
    if m.ndim != 3:
        raise FilterError(f"point mask must be 3-D; got shape {m.shape}")
    out = m
    for axis in range(3):
        if m.shape[axis] > 1:
            a = [slice(None)] * 3
            b = [slice(None)] * 3
            a[axis] = slice(None, -1)
            b[axis] = slice(1, None)
            out = out[tuple(a)] & out[tuple(b)]
    return out
