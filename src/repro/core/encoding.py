"""Wire encodings for point selections.

What actually crosses the network in an NDP run is an encoded
:class:`~repro.grid.selection.PointSelection`.  Its size — relative to the
full (possibly compressed) array — is the whole ballgame, so the encoding
deserves care and an ablation (benchmark ``test_abl_encoding``).  Three
schemes:

* ``"ids"`` — delta-coded sorted point ids (packed to the narrowest
  integer width that fits the largest delta) + raw values.  Wins at low
  selectivity, which the paper shows is the common case.
* ``"bitmap"`` — a bit-packed presence mask over all grid points + raw
  values.  Fixed ~0.125 bits/point overhead; wins at high selectivity.
* ``"auto"`` — whichever of the two is smaller for this selection.

Independently of the method, the bulk payload fields (values and ids or
bitmap) can be compressed with any registered codec
(``payload_codec="lz4"`` is the NDP server's default): selection values
cluster around the contour values and delta-coded ids are tiny integers,
so the paper's Fig. 9 observation that compression and NDP compose
extends to the selection wire format itself — typically a further 2-4x
(see the ``test_abl_encoding`` benchmark).

Every encoding is a flat dict of msgpack-friendly values (strs, ints,
bytes), so it rides the RPC layer without auxiliary framing.

Integrity: :func:`attach_checksum` stamps an encoded reply with a digest
over its canonical serialization (every field except the stamp itself),
and :func:`decode_selection` verifies the stamp — when present — *before*
decompressing or trusting any field, raising
:class:`~repro.errors.IntegrityError` on mismatch.  Replies without a
stamp decode exactly as before, so old and new peers interoperate.
"""

from __future__ import annotations

import numpy as np

from repro.compression import get_codec
from repro.errors import FormatError, SelectionError
from repro.grid.selection import PointSelection
from repro.io.checksum import DEFAULT_ALGO, checksum
from repro.io.checksum import verify as verify_bytes
from repro.rpc.msgpack import pack

__all__ = [
    "encode_selection",
    "decode_selection",
    "attach_checksum",
    "wire_size",
    "ids_wire_bytes_per_point",
    "ENCODINGS",
]

ENCODINGS = ("auto", "ids", "bitmap")

_WIDTH_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def ids_wire_bytes_per_point(value_dtype="<f4", id_delta_width: int = 4) -> float:
    """Wire bytes per selected point under the ``ids`` encoding.

    One selected point costs its value (``value_dtype`` itemsize) plus
    one delta-coded id at ``id_delta_width`` bytes.  The defaults —
    float32 values, the conservative 4-byte delta width — reproduce the
    cost-model constant the planner historically hard-coded (8.0), but
    now anchored to this module's actual layout: change the wire format
    and the planner's estimate moves with it.
    """
    if id_delta_width not in _WIDTH_DTYPES:
        raise SelectionError(
            f"id delta width must be one of {sorted(_WIDTH_DTYPES)}, "
            f"got {id_delta_width}"
        )
    return float(np.dtype(value_dtype).itemsize + id_delta_width)


def _wire_view(arr: np.ndarray) -> memoryview:
    """Zero-copy bytes-like view of a contiguous array.

    The view keeps the array alive, so the payload rides through the
    msgpack encoder (which appends buffers directly) without ever
    materializing an intermediate ``bytes`` copy.
    """
    return memoryview(np.ascontiguousarray(arr)).cast("B")


def _pack_ids(ids: np.ndarray) -> tuple:
    """Delta-encode sorted ids; returns (payload view, width, first_id)."""
    if ids.size == 0:
        return b"", 1, 0
    deltas = np.diff(ids)
    # Unsorted or duplicated ids would wrap negative deltas on the
    # unsigned astype below and come out as a *plausible* corrupt
    # encoding — refuse loudly instead.
    if deltas.size and int(deltas.min()) <= 0:
        raise SelectionError(
            "ids must be strictly increasing to delta-encode; "
            "got a non-positive delta"
        )
    first = int(ids[0])
    peak = int(deltas.max()) if deltas.size else 0
    width = 8
    for w in (1, 2, 4, 8):
        if peak < (1 << (8 * w)):
            width = w
            break
    return _wire_view(deltas.astype(_WIDTH_DTYPES[width])), width, first


def _unpack_ids(payload, width: int, first: int, count: int) -> np.ndarray:
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if width not in _WIDTH_DTYPES:
        raise FormatError(f"bad id delta width {width}")
    try:
        deltas = np.frombuffer(payload, dtype=_WIDTH_DTYPES[width])
    except ValueError as exc:
        # e.g. "buffer size must be a multiple of element size": a
        # misaligned payload is a wire-format violation, and the RPC
        # error contract promises FormatError for those.
        raise FormatError(
            f"id payload of {len(payload)} bytes is not a whole number of "
            f"{width}-byte deltas: {exc}"
        ) from exc
    if deltas.size != count - 1:
        raise FormatError(
            f"id payload holds {deltas.size} deltas; expected {count - 1}"
        )
    ids = np.empty(count, dtype=np.int64)
    ids[0] = first
    ids[1:] = first + np.cumsum(deltas.astype(np.int64))
    return ids


#: Encoding fields holding bulk payload (candidates for payload_codec).
_PAYLOAD_FIELDS = ("values", "id_deltas", "bitmap")


def _compress_payload(encoded: dict, payload_codec: str) -> dict:
    if payload_codec == "raw":
        return encoded
    codec = get_codec(payload_codec)
    out = dict(encoded, payload_codec=payload_codec)
    for field in _PAYLOAD_FIELDS:
        if field in out:
            out[field] = codec.compress(out[field])
    return out


def encode_selection(
    sel: PointSelection, method: str = "auto", payload_codec: str = "raw"
) -> dict:
    """Encode a selection for the wire.

    Returns a msgpack-serializable dict; :func:`wire_size` reports the
    size benchmarks should charge to the network.  ``payload_codec``
    compresses the bulk fields with a registered codec.
    """
    if method not in ENCODINGS:
        raise FormatError(f"unknown encoding {method!r}; use one of {ENCODINGS}")
    base = {
        "dims": list(sel.dims),
        "origin": list(sel.origin),
        "spacing": list(sel.spacing),
        "array": sel.array_name,
        "dtype": sel.values.dtype.str,
        "count": int(sel.count),
        # Zero-copy: payload fields are buffer views of the selection's
        # arrays (the msgpack encoder appends them without intermediate
        # bytes objects), so treat the selection as frozen once encoded.
        "values": _wire_view(sel.values),
    }
    if sel.axes is not None:
        # Rectilinear structure: three small float64 coordinate arrays.
        base["axes"] = [_wire_view(a) for a in sel.axes]

    id_payload, width, first = _pack_ids(sel.ids)
    ids_enc = dict(base, method="ids", id_deltas=id_payload, id_width=width, id_first=first)

    if method == "ids":
        return _compress_payload(ids_enc, payload_codec)

    mask = np.zeros(sel.total_points, dtype=bool)
    mask[sel.ids] = True
    bitmap_enc = dict(base, method="bitmap", bitmap=_wire_view(np.packbits(mask)))

    if method == "bitmap":
        return _compress_payload(bitmap_enc, payload_codec)
    a = _compress_payload(ids_enc, payload_codec)
    b = _compress_payload(bitmap_enc, payload_codec)
    return a if wire_size(a) <= wire_size(b) else b


# Keys excluded from the digest: the stamp itself, plus the live shard-map
# version token.  ``map_version`` is advisory routing metadata stamped
# *after* the cached reply body (a server must be able to advertise a new
# map on a cache hit without recomputing the digest), and the manifest the
# token points at is independently signed — so excluding it costs no
# integrity coverage.
_CHECKSUM_KEYS = frozenset({"crc", "crc_algo", "map_version"})


def _digest_bytes(encoded: dict) -> bytes:
    """Canonical bytes of an encoding for checksumming.

    Key-sorted ``[key, value]`` pairs through the deterministic msgpack
    encoder: insertion order, which differs between encode paths, never
    affects the digest — only content does.
    """
    return pack(
        [[key, encoded[key]] for key in sorted(encoded) if key not in _CHECKSUM_KEYS]
    )


def attach_checksum(encoded: dict, algo: str = DEFAULT_ALGO) -> dict:
    """Return a copy of ``encoded`` stamped with an integrity checksum.

    Applied to the final wire dict (after payload compression), so the
    digest covers exactly the bytes that cross the link.
    """
    out = dict(encoded)
    out.pop("crc", None)
    out.pop("crc_algo", None)
    out["crc"] = checksum(_digest_bytes(out), algo)
    out["crc_algo"] = algo
    return out


def decode_selection(encoded: dict) -> PointSelection:
    """Rebuild a :class:`PointSelection` from :func:`encode_selection` output.

    A reply stamped by :func:`attach_checksum` is verified before any
    field is trusted; mismatch raises
    :class:`~repro.errors.IntegrityError`.  Unstamped replies skip the
    check (pre-checksum peers).
    """
    if "crc" in encoded:
        verify_bytes(
            _digest_bytes(encoded),
            encoded["crc"],
            encoded.get("crc_algo", DEFAULT_ALGO),
            "encoded selection reply",
        )
    payload_codec = encoded.get("payload_codec", "raw")
    if payload_codec != "raw":
        codec = get_codec(payload_codec)
        encoded = dict(encoded)
        for field in _PAYLOAD_FIELDS:
            if field in encoded:
                encoded[field] = codec.decompress(encoded[field])
    try:
        method = encoded["method"]
        dims = tuple(int(v) for v in encoded["dims"])
        origin = tuple(float(v) for v in encoded["origin"])
        spacing = tuple(float(v) for v in encoded["spacing"])
        array = encoded["array"]
        dtype = np.dtype(encoded["dtype"])
        count = int(encoded["count"])
        values = np.frombuffer(encoded["values"], dtype=dtype)
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed selection encoding: {exc}") from exc
    if values.size != count:
        raise FormatError(f"{values.size} values for {count} declared points")

    if method == "ids":
        ids = _unpack_ids(
            encoded["id_deltas"], int(encoded["id_width"]), int(encoded["id_first"]), count
        )
    elif method == "bitmap":
        total = dims[0] * dims[1] * dims[2]
        packed = np.frombuffer(encoded["bitmap"], dtype=np.uint8)
        expected = (total + 7) // 8
        # np.unpackbits(..., count=total) would zero-pad a truncated
        # bitmap and silently ignore bits past ``total`` in an oversized
        # one — exactly the shapes a corrupted unstamped reply takes.
        # Validate the byte length and the padding bits explicitly.
        if packed.size != expected:
            raise FormatError(
                f"bitmap holds {packed.size} bytes; {expected} required "
                f"for {total} grid points"
            )
        if total % 8 and packed.size:
            pad = np.unpackbits(packed[-1:])[total % 8 :]
            if pad.any():
                raise FormatError(
                    "bitmap has set bits past the grid's last point"
                )
        bits = np.unpackbits(packed, count=total)
        ids = np.nonzero(bits)[0].astype(np.int64)
        if ids.size != count:
            raise FormatError(
                f"bitmap has {ids.size} set bits; header declares {count}"
            )
    else:
        raise FormatError(f"unknown selection encoding method {method!r}")
    axes = None
    if "axes" in encoded:
        try:
            axes = tuple(
                np.frombuffer(blob, dtype=np.float64) for blob in encoded["axes"]
            )
        except (TypeError, ValueError) as exc:
            raise FormatError(f"malformed axes payload: {exc}") from exc
    if payload_codec == "raw":
        # The values view aliases the caller's reply buffer: copy so the
        # selection does not pin a whole RPC frame.  Decompressed payloads
        # are already exclusively ours — np.frombuffer above was the only
        # copy-free step left, so no second copy happens.
        values = values.copy()
    try:
        return PointSelection(dims, origin, spacing, array, ids, values,
                              axes=axes)
    except SelectionError as exc:
        raise FormatError(f"decoded selection is invalid: {exc}") from exc


_BUFFER_TYPES = (bytes, bytearray, memoryview)


def wire_size(encoded: dict) -> int:
    """Bytes this encoding puts on the wire (payload fields + small header)."""
    size = 0
    for key, value in encoded.items():
        if isinstance(value, _BUFFER_TYPES):
            size += len(value)
        elif isinstance(value, list) and value and isinstance(value[0], _BUFFER_TYPES):
            size += sum(len(v) for v in value)
        else:
            size += 16  # header-ish field: generous flat estimate
        size += len(key)
    return size
