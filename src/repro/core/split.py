"""Pipeline splitting: one contour filter becomes a pre-/post-filter pair.

The paper "envision[s] dividing a pipeline filter into a pre-filter
component and a post-filter component" (Sec. V, Fig. 10): the pre-filter
joins the source in a partial pipeline on the storage side, the
post-filter joins the sink on the client side.  Two entry points:

* :func:`split_contour_filter` — derive a configured
  (:class:`~repro.core.prefilter.ContourPreFilter`,
  :class:`~repro.core.postfilter.ContourPostFilter`) pair from a stock
  :class:`~repro.filters.contour.ContourFilter`.
* :class:`SplitContourPipeline` — take a *whole* client pipeline
  (reader -> contour -> ...) and rebuild it as the two halves around a
  selection hand-off, preserving whatever ran downstream of the contour.
"""

from __future__ import annotations

from repro.core.postfilter import ContourPostFilter
from repro.core.prefilter import ContourPreFilter
from repro.errors import PipelineError
from repro.filters.contour import ContourFilter
from repro.pipeline.algorithm import Algorithm
from repro.pipeline.source import TrivialProducer

__all__ = ["split_contour_filter", "SplitContourPipeline"]


def split_contour_filter(
    contour: ContourFilter, mode: str = "cell-closure"
) -> tuple[ContourPreFilter, ContourPostFilter]:
    """Split a configured contour filter into its NDP halves.

    The pre-filter inherits the array name and values; the post-filter
    inherits the values.  Composing them over any transport reproduces the
    original filter's output exactly (cell-closure mode).
    """
    if contour.array_name is None:
        raise PipelineError("cannot split a ContourFilter with no array name")
    if not contour.values:
        raise PipelineError("cannot split a ContourFilter with no contour values")
    pre = ContourPreFilter(contour.array_name, contour.values, mode=mode)
    post = ContourPostFilter(contour.values)
    return pre, post


class SplitContourPipeline:
    """A client pipeline rebuilt as storage-side and client-side halves.

    Parameters
    ----------
    source:
        The original pipeline's source (stays on the storage side).
    contour:
        The :class:`ContourFilter` to split.  Must currently consume
        ``source`` directly (filters between source and contour would have
        to be classified side-by-side; the paper's prototype, like ours,
        splits at the contour filter).
    mode:
        Selection mode forwarded to the pre-filter.

    Attributes
    ----------
    pre_pipeline:
        The storage-side half: ``source -> ContourPreFilter``.  Its output
        is the :class:`~repro.grid.selection.PointSelection` to ship.
    post_pipeline:
        The client-side half: ``selection -> ContourPostFilter``.  Feed it
        with :meth:`deliver`.
    """

    def __init__(self, source: Algorithm, contour: ContourFilter, mode: str = "cell-closure"):
        conn = contour.input_connection(0)
        if conn is None or conn.algorithm is not source:
            raise PipelineError(
                "ContourFilter must be connected directly to the given source"
            )
        pre, post = split_contour_filter(contour, mode=mode)
        pre.set_input_connection(0, source)
        self.pre_filter = pre
        self.post_filter = post
        self._hand_off = TrivialProducer()
        post.set_input_connection(0, self._hand_off)

    # ------------------------------------------------------------------
    def run_storage_side(self):
        """Execute the storage half; returns the selection to transfer."""
        return self.pre_filter.output()

    def deliver(self, selection) -> None:
        """Hand a received selection to the client half."""
        self._hand_off.set_data(selection)

    def run_client_side(self):
        """Execute the client half; returns the contour geometry."""
        return self.post_filter.output()

    def run_local(self):
        """Run both halves in-process (no transport): the full loop."""
        self.deliver(self.run_storage_side())
        return self.run_client_side()
