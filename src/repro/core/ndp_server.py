"""The storage-side NDP service (paper Fig. 10, left half / Fig. 11a).

Runs next to the object store: mounts the bucket through a *local*
:class:`~repro.storage.s3fs.S3FileSystem` (no network link), and exposes
over RPC:

* ``prefilter_contour(key, array, values, mode, encoding)`` — the offload:
  read the array block, decompress, pre-filter, return the encoded
  selection plus per-phase statistics,
* ``read_array(key, array)`` — a whole-array fetch (lets a client fall
  back to baseline through the same endpoint),
* ``list_objects(prefix)`` / ``describe(key)`` — discovery.

If constructed with a :class:`~repro.storage.netsim.Testbed`, the server
charges its CPU phases (decompression, pre-filter scan) to the simulated
clock, mirroring where those costs land in the paper's NDP runs.  The
real work always happens; only time is modelled.

With ``cache_bytes`` / ``selection_cache_bytes`` budgets the server keeps
storage-side caches (see :mod:`repro.storage.cache`): decoded array
blocks and encoded pre-filter replies, both with single-flight request
coalescing across the TCP listener's connection threads.  Testbed phases
are charged *inside* the cache loaders, so a hit honestly skips the
read/decompress (array cache) or the whole scan+encode (selection cache)
on the simulated clock too.  Entries are keyed by the store's
mtime/version token for the object, so overwriting an object invalidates
by construction.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.compression import get_codec
from repro.core.encoding import attach_checksum, encode_selection, wire_size
from repro.core.filter_splits import prefilter_slice, prefilter_threshold
from repro.core.prefilter import prefilter_contour, prefilter_contour_stream
from repro.errors import IntegrityError, RPCError
from repro.filters.contour import normalize_values
from repro.grid.bounds import Bounds
from repro.io.vgf import read_vgf_array, read_vgf_block, read_vgf_info
from repro.obs.flightrec import NULL_RECORDER, FlightRecorder
from repro.obs.metrics import Registry
from repro.obs.profile import NULL_PROFILER, SamplingProfiler
from repro.obs.slo import SLOEngine
from repro.obs.trace import NULL_TRACER
from repro.rpc.admission import AdmissionController, check_deadline
from repro.rpc.server import RPCServer
from repro.storage.cache import ArrayCache, SelectionCache
from repro.storage.s3fs import S3FileSystem

__all__ = ["NDPServer"]


class NDPServer:
    """Storage-side partial-pipeline host.

    Parameters
    ----------
    fs:
        A *locally mounted* filesystem over the object store (its ``link``
        should be ``None``: in the NDP placement s3fs is colocated with
        the store, paper Fig. 11a).
    testbed:
        Optional cost model; when present, decompress and scan phases
        advance its simulated clock.
    cache_bytes:
        Byte budget for the decoded-array LRU cache (0 disables it, the
        default — benchmarks that model per-load costs construct the
        server cold).  The ``serve`` CLI enables it by default.
    selection_cache_bytes:
        Byte budget for the encoded pre-filter reply cache (0 disables).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` (use a dedicated
        instance per server, labelled e.g. ``"server"``).  Handlers then
        open child spans around store reads, decompression, pre-filter
        scans, and encoding, nested under the caller's propagated trace
        context, and ship them back in each traced reply.
    registry:
        Optional :class:`~repro.obs.metrics.Registry`; one is created
        when omitted.  All request counters, the request-latency
        histograms, and both cache stats surface through its
        ``snapshot()`` (also exposed as the ``stats`` RPC endpoint).
    max_inflight, max_pending:
        Admission-control bounds (see
        :class:`~repro.rpc.admission.AdmissionController`).  ``0``
        in-flight (default) means unlimited — the controller still
        counts, so stats report concurrency even without shedding.
    verify_checksums:
        When true (default), at-rest VGF block checksums are verified on
        every read and every pre-filter reply is stamped with a wire
        checksum (see :func:`~repro.core.encoding.attach_checksum`).
        ``False`` reproduces pre-integrity behaviour for compat tests.
    fused_streaming:
        When true (default), ``prefilter_contour`` requests that bypass
        the array cache run the fused hot path: the stored block streams
        through the codec's incremental decoder straight into the
        chunked interesting-scan
        (:func:`~repro.core.prefilter.prefilter_contour_stream`), so the
        whole decoded array is never materialized.  Replies are
        byte-identical to the materializing path.  ``False`` forces the
        legacy decode-then-scan path everywhere.
    flight_recorder:
        ``"auto"`` (default) builds an always-on
        :class:`~repro.obs.flightrec.FlightRecorder`; pass an instance to
        share one, or ``None``/``False`` to disable.  The recorder feeds
        on request begin/end, phase timings, sheds, integrity failures,
        and cache outcomes, and is exposed as the ``dump`` RPC endpoint.
    slo:
        ``"auto"`` (default) builds a per-tenant
        :class:`~repro.obs.slo.SLOEngine` with the default objective;
        pass an instance to customize, or ``None``/``False`` to disable.
        Burn state surfaces through ``stats``/``health`` either way;
        shedding decisions only consult it when ``slo_shed`` is set.
    profiler:
        ``"auto"`` (default) builds a
        :class:`~repro.obs.profile.SamplingProfiler` (started by the
        ``serve_*`` methods, stopped on listener stop); pass an instance
        or ``None``/``False``.  Exposed as the ``profile`` RPC endpoint.
    dump_dir:
        Directory the flight recorder writes trigger/drain dumps into.
        ``None`` (default) keeps the ring in memory only — explicit
        ``dump`` RPCs with a path still work.
    slo_shed:
        When true, the admission gate and fair scheduler refuse requests
        from tenants burning their error budget *while the server is
        saturated* — SLO-aware shedding (off by default: observe first).
    """

    def __init__(
        self,
        fs: S3FileSystem,
        testbed=None,
        cache_bytes: int = 0,
        selection_cache_bytes: int = 0,
        tracer=None,
        registry: Registry | None = None,
        max_inflight: int = 0,
        max_pending: int = 0,
        verify_checksums: bool = True,
        fused_streaming: bool = True,
        flight_recorder="auto",
        slo="auto",
        profiler="auto",
        dump_dir: str | None = None,
        slo_shed: bool = False,
        map_version=None,
    ):
        self.fs = fs
        #: live shard-map generation advertised in every pre-filter reply:
        #: an int, a zero-arg callable (e.g. ``ManifestWatcher.version``),
        #: or ``None`` to omit the token entirely (monolithic serving —
        #: keeps those replies byte-identical to pre-replication peers).
        self.map_version = map_version
        self.testbed = testbed
        self.fused_streaming = fused_streaming
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else Registry()
        self.verify_checksums = verify_checksums
        if flight_recorder == "auto":
            self.recorder = FlightRecorder(dump_dir=dump_dir, process="server")
        else:
            self.recorder = flight_recorder or NULL_RECORDER
        if slo == "auto":
            self.slo = SLOEngine()
        else:
            self.slo = slo or None
        if profiler == "auto":
            self.profiler = SamplingProfiler()
        else:
            self.profiler = profiler or NULL_PROFILER
        self.slo_shed = bool(slo_shed)
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_pending=max_pending
        )
        self._listener = None
        self._fair_queue = None
        cache_recorder = self.recorder if self.recorder else None
        self.array_cache = (
            ArrayCache(cache_bytes, tracer=self.tracer, recorder=cache_recorder)
            if cache_bytes > 0 else None
        )
        self.selection_cache = (
            SelectionCache(selection_cache_bytes, tracer=self.tracer,
                           recorder=cache_recorder)
            if selection_cache_bytes > 0
            else None
        )
        self._batch_local = threading.local()
        # Lifetime request counters, unified behind the registry: the
        # legacy ``server_stats`` endpoint reads the same instruments.
        self._requests = self.registry.counter(
            "requests", "total pre-filter requests served")
        self._prefilter_calls = self.registry.counter(
            "prefilter_calls", "pre-filter endpoint invocations")
        self._raw_bytes_scanned = self.registry.counter(
            "raw_bytes_scanned", "decompressed bytes scanned by pre-filters")
        self._wire_bytes_sent = self.registry.counter(
            "wire_bytes_sent", "encoded selection bytes shipped to clients")
        self._selected_points = self.registry.counter(
            "selected_points", "points selected across all pre-filters")
        self._latency = self.registry.histogram(
            "request_latency_seconds",
            help="wall-clock latency of pre-filter requests")
        self._sim_latency = self.registry.histogram(
            "request_sim_seconds",
            help="simulated-clock cost of pre-filter requests")
        self._integrity_failures = self.registry.counter(
            "integrity_failures",
            "checksum mismatches detected on at-rest reads")
        self._hedged_requests = self.registry.counter(
            "hedged_requests", "requests tagged as client hedge attempts")
        self._failover_requests = self.registry.counter(
            "failover_requests",
            "requests tagged as client failover attempts")
        self.registry.register("admission", self.admission.info)
        if self.array_cache is not None:
            self.registry.register("array_cache", self.array_cache.info)
        if self.selection_cache is not None:
            self.registry.register("selection_cache", self.selection_cache.info)
        if self.recorder:
            self.registry.register("flightrec", self.recorder.info)
        if self.slo is not None:
            self.registry.register("slo", self.slo.snapshot)
        if self.profiler:
            self.registry.register("profiler", self.profiler.info)
        self.rpc = RPCServer(
            {
                "prefilter_contour": self.prefilter_contour,
                "prefilter_threshold": self.prefilter_threshold,
                "prefilter_slice": self.prefilter_slice,
                "prefilter_batch": self.prefilter_batch,
                "probe_selectivity": self.probe_selectivity,
                "array_statistics": self.array_statistics,
                "render_contour": self.render_contour,
                "read_array": self.read_array,
                "list_objects": self.list_objects,
                "describe": self.describe,
                "object_version": self.object_version,
                "read_block": self.read_block,
                "server_stats": self.server_stats,
                "stats": self.stats_snapshot,
                "health": self.health,
                "dump": self.dump_flight,
                "profile": self.profile_snapshot,
            },
            tracer=self.tracer,
            admission=self.admission,
            recorder=self.recorder if self.recorder else None,
            slo=self.slo,
            slo_shed=self.slo_shed,
            ctx_counters={
                "hedge": self._hedged_requests.inc,
                "failover": self._failover_requests.inc,
            },
        )

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def list_objects(self, prefix: str = "") -> list:
        return self.fs.listdir(prefix)

    def describe(self, key: str) -> dict:
        """Header summary of one VGF object."""
        with self.fs.open(key) as fh:
            info = read_vgf_info(fh)
        return {
            "dims": list(info.dims),
            "origin": list(info.origin),
            "spacing": list(info.spacing),
            "meta": info.meta,
            "arrays": [
                {
                    "name": a.name,
                    "dtype": a.dtype,
                    "codec": a.codec,
                    "stored_bytes": a.stored_bytes,
                    "raw_bytes": a.raw_bytes,
                }
                for a in info.arrays
            ],
        }

    def object_version(self, key: str) -> dict:
        """Coherence probe for downstream cache tiers (metadata only).

        Returns the store's version token for ``key`` plus the live shard
        ``map_version`` when one is configured — everything an edge cache
        needs to decide whether its entries for this object are still
        fresh, in one cheap round trip that never touches array data.
        Unlike :meth:`_store_version` this *raises* for a missing object
        (as a typed storage error over the wire): an edge must be able to
        tell "object gone" from "no version surface".
        """
        version = getattr(self.fs, "version", None)
        token = version(key) if version is not None else None
        out = {"version": list(token) if isinstance(token, tuple) else token}
        map_version = self._current_map_version()
        if map_version is not None:
            out["map_version"] = map_version
        return out

    def read_block(self, key: str, array: str) -> dict:
        """Ship one array's *stored* block plus its decode recipe.

        The edge tier promotes hot objects by pulling the compressed
        block once and decoding it locally, after which nearby-ROI
        requests never cross the WAN.  The reply carries exactly what
        :func:`~repro.io.vgf.read_vgf_array` needs: grid structure,
        the :class:`~repro.io.vgf.ArrayInfo` decode fields, the stored
        (still-compressed, checksum-verified) bytes, and the version
        token the block was read under, so the edge caches it coherently.
        """
        check_deadline("store read")
        try:
            with self.tracer.span("store.read", key=key, array=array), \
                    self.recorder.phase("store.read", key=key, array=array):
                with self.fs.open(key) as fh:
                    info = read_vgf_info(fh)
                    entry = info.array(array)
                    stored, _ = read_vgf_block(
                        fh, array, info, verify=self.verify_checksums
                    )
        except IntegrityError:
            self._integrity_failures.inc()
            self.tracer.add_event("integrity.failure", key=key, array=array)
            self.recorder.record("integrity.failure", key=key, array=array)
            raise
        token = self._store_version(key)
        out = {
            "dims": list(info.dims),
            "origin": list(info.origin),
            "spacing": list(info.spacing),
            "array": {
                "name": entry.name,
                "dtype": entry.dtype,
                "components": entry.components,
                "association": entry.association,
                "codec": entry.codec,
                "stored_bytes": entry.stored_bytes,
                "raw_bytes": entry.raw_bytes,
            },
            "stored": stored,
            "version": list(token) if isinstance(token, tuple) else token,
        }
        if info.axes is not None:
            out["axes"] = [
                np.ascontiguousarray(axis, dtype=np.float64).tobytes()
                for axis in info.axes
            ]
        return out

    def _store_version(self, key: str):
        """Invalidation token for ``key`` (store mtime/version + size).

        Metadata-only, so probing it per request is cheap next to a read.
        ``None`` (a store-like without any version surface) still caches,
        but then an overwrite is only noticed if the size changes.
        """
        version = getattr(self.fs, "version", None)
        if version is None:
            return None
        try:
            return version(key)
        except Exception:
            return None

    def _read_array(self, key: str, array: str):
        """Read + decode one array block, charging read/decompress phases.

        Span layout: ``store.read`` covers the object read + real decode
        (its sim time is the modelled SSD cost), ``decompress`` carries
        the modelled decompression charge (the *real* decompress wall
        time is folded into the read, where the VGF reader performs it).
        """
        check_deadline("store read")
        try:
            with self.tracer.span("store.read", key=key, array=array), \
                    self.recorder.phase("store.read", key=key, array=array):
                with self.fs.open(key) as fh:
                    info = read_vgf_info(fh)
                    entry = info.array(array)
                    data_array, _ = read_vgf_array(
                        fh, array, info, verify=self.verify_checksums,
                        copy=False,
                    )
        except IntegrityError:
            # Fail loudly, never serve wrong geometry: the typed error
            # crosses the wire and the client re-reads / falls back.
            # Outside the phase scope so the trigger dump already holds
            # the failed store.read phase — the timeline explains itself.
            self._integrity_failures.inc()
            self.tracer.add_event("integrity.failure", key=key, array=array)
            self.recorder.record("integrity.failure", key=key, array=array)
            raise
        check_deadline("decompress")
        with self.tracer.span("decompress", codec=entry.codec,
                              raw_bytes=entry.raw_bytes), \
                self.recorder.phase("decompress", codec=entry.codec):
            if self.testbed is not None:
                self.testbed.charge_decompress(entry.codec, entry.raw_bytes)
        grid = info.make_grid()
        grid.point_data.add(data_array)
        return grid, entry

    def _load_array(self, key: str, array: str):
        """One decoded ``(grid, entry)`` pair, via every cache layer.

        Lookup order: the current batch's per-thread memo (one read per
        object per ``prefilter_batch``, even with caching off), then the
        shared :class:`~repro.storage.cache.ArrayCache` (single-flight
        across connection threads), then the store.  Testbed read and
        decompress charges happen only on the store path.
        """
        memo = getattr(self._batch_local, "memo", None)
        if memo is not None and (key, array) in memo:
            return memo[(key, array)]
        if self.array_cache is None:
            pair = self._read_array(key, array)
        else:
            cache_key = (key, array, self._store_version(key))
            pair = self.array_cache.get_or_load(
                cache_key, lambda: self._read_array(key, array)
            )
        if memo is not None:
            memo[(key, array)] = pair
        return pair

    def prefilter_contour(
        self,
        key: str,
        array: str,
        values: list,
        mode: str = "cell-closure",
        encoding: str = "auto",
        wire_codec: str = "lz4",
        roi: list | None = None,
    ) -> dict:
        """The offloaded pre-filter: returns the encoded selection + stats.

        ``wire_codec`` compresses the selection payload before transfer —
        the paper's Fig. 9 compression/NDP composition applied to the NDP
        reply itself.  ``roi`` is an optional 6-tuple
        ``(xmin, xmax, ymin, ymax, zmin, zmax)`` restricting the offload
        to a region of interest.
        """
        roi_key = tuple(float(v) for v in roi) if roi is not None else None

        def compute() -> dict:
            if self._fusable(key, array, roi_key):
                reply = self._prefilter_contour_fused(
                    key, array, values, mode, encoding, wire_codec
                )
                if reply is not None:
                    return reply
            grid, entry = self._load_array(key, array)
            check_deadline("pre-filter scan")
            with self.tracer.span("prefilter", kind="contour", key=key,
                                  array=array), \
                    self.recorder.phase("prefilter", kind="contour", key=key):
                if self.testbed is not None:
                    self.testbed.charge_filter_scan(entry.raw_bytes)
                bounds = Bounds(*roi_key) if roi_key is not None else None
                selection = prefilter_contour(
                    grid, array, values, mode=mode, roi=bounds
                )
            return self._finish(selection, entry, encoding, wire_codec)

        return self._reply(
            ("contour", key, array, normalize_values(values), mode,
             encoding, wire_codec, roi_key),
            key, compute,
        )

    def _fusable(self, key: str, array: str, roi_key) -> bool:
        """Whether this contour request may take the fused streaming path.

        The fused path never materializes the decoded grid, so anything
        that needs one — a region-of-interest mask, the decoded-array
        cache, or a batch memo sharing the grid across requests — routes
        to the legacy path instead.
        """
        return (
            self.fused_streaming
            and roi_key is None
            and self.array_cache is None
            and getattr(self._batch_local, "memo", None) is None
        )

    def _prefilter_contour_fused(
        self, key: str, array: str, values, mode: str,
        encoding: str, wire_codec: str,
    ) -> dict | None:
        """The fused hot path: stream-decode + scan without materializing.

        Reads only the *stored* block (checksum-verified), then feeds the
        codec's incremental decoder straight into the chunked
        interesting-scan.  Span layout, testbed charges, and deadline
        phases mirror the legacy path, so traces and simulated costs stay
        comparable.  Returns ``None`` for blocks the streaming scan
        cannot serve (cell-associated or multi-component arrays) — the
        caller falls back to the materializing path.
        """
        check_deadline("store read")
        try:
            with self.tracer.span("store.read", key=key, array=array), \
                    self.recorder.phase("store.read", key=key, array=array):
                with self.fs.open(key) as fh:
                    info = read_vgf_info(fh)
                    entry = info.array(array)
                    if entry.association != "point" or entry.components != 1:
                        return None
                    stored, _ = read_vgf_block(
                        fh, array, info, verify=self.verify_checksums
                    )
        except IntegrityError:
            self._integrity_failures.inc()
            self.tracer.add_event("integrity.failure", key=key, array=array)
            self.recorder.record("integrity.failure", key=key, array=array)
            raise
        check_deadline("decompress")
        with self.tracer.span("decompress", codec=entry.codec,
                              raw_bytes=entry.raw_bytes):
            if self.testbed is not None:
                self.testbed.charge_decompress(entry.codec, entry.raw_bytes)
        check_deadline("pre-filter scan")
        with self.tracer.span("prefilter", kind="contour", key=key,
                              array=array, fused=True), \
                self.recorder.phase("prefilter", kind="contour", key=key,
                                    fused=True):
            if self.testbed is not None:
                self.testbed.charge_filter_scan(entry.raw_bytes)
            selection = prefilter_contour_stream(
                get_codec(entry.codec).iter_decompress(stored),
                info.dims,
                np.dtype(entry.dtype),
                array,
                values,
                mode=mode,
                origin=info.origin,
                spacing=info.spacing,
                axes=info.axes,
            )
        return self._finish(selection, entry, encoding, wire_codec)

    def _finish(self, selection, entry, encoding: str, wire_codec: str) -> dict:
        """Shared tail: encode, charge wire compression, attach stats."""
        check_deadline("encode")
        with self.tracer.span("encode", encoding=encoding,
                              wire_codec=wire_codec), \
                self.recorder.phase("encode", wire_codec=wire_codec):
            encoded = encode_selection(
                selection, method=encoding, payload_codec=wire_codec
            )
            if self.testbed is not None and wire_codec != "raw":
                self.testbed.charge_compress(wire_codec, selection.payload_nbytes)
        encoded["stats"] = {
            "stored_bytes": entry.stored_bytes,
            "raw_bytes": entry.raw_bytes,
            "codec": entry.codec,
            "selected_points": int(selection.count),
            "total_points": int(selection.total_points),
            "wire_bytes": wire_size(encoded),
        }
        if self.verify_checksums:
            # Stamp covers everything that crosses the wire (stats too);
            # the client verifies at decode before trusting a byte.
            encoded = attach_checksum(encoded)
        return encoded

    def _reply(self, request_key: tuple, key: str, compute) -> dict:
        """Serve one pre-filter reply, via the selection cache when enabled.

        ``request_key`` is the full request tuple (kind, key, array,
        canonical parameters, encoding, wire codec, roi); the store's
        version token for ``key`` is appended so an overwrite invalidates.
        Per-request accounting still runs on every call — a cache hit is
        a served request; only the compute is shared.  Each served reply
        lands one observation in the wall-clock latency histogram (and
        the simulated one, when a testbed is attached).
        """
        wall0 = time.perf_counter()
        sim0 = self.testbed.clock.now if self.testbed is not None else None
        if self.selection_cache is None:
            encoded = compute()
        else:
            encoded = self.selection_cache.get_or_load(
                request_key + (self._store_version(key),), compute
            )
        # Exemplar: the slowest request in each latency bucket keeps its
        # trace id, so a histogram outlier links straight to its trace.
        exemplar = None
        span = self.tracer.current_span()
        if span.trace_id:
            exemplar = {"trace_id": span.trace_id, "span_id": span.span_id}
        self._latency.observe(time.perf_counter() - wall0, exemplar=exemplar)
        if sim0 is not None:
            self._sim_latency.observe(self.testbed.clock.now - sim0)
        self._record(encoded["stats"])
        # Shallow copy: cached replies are shared across threads and the
        # dispatcher/transport must be free to mutate its own frame dict.
        out = dict(encoded)
        version = self._current_map_version()
        if version is not None:
            # Stamped on the copy, post-cache: a cached reply body still
            # advertises the *live* generation.  ``map_version`` is
            # checksum-exempt (see encoding._CHECKSUM_KEYS) precisely so
            # this stamp never invalidates the cached digest.
            out["map_version"] = version
        return out

    def _current_map_version(self):
        v = self.map_version() if callable(self.map_version) else self.map_version
        return int(v) if v is not None else None

    def _record(self, stats: dict) -> None:
        """Accumulate per-request statistics (instruments are thread-safe:
        the TCP listener serves each connection on its own thread)."""
        self._requests.inc()
        self._prefilter_calls.inc()
        self._raw_bytes_scanned.inc(stats["raw_bytes"])
        self._wire_bytes_sent.inc(stats["wire_bytes"])
        self._selected_points.inc(stats["selected_points"])

    def health(self) -> dict:
        """Cheap liveness/readiness probe for clients and load balancers.

        Unlike the pre-filter endpoints this touches no object data, so a
        resilient client (or its circuit breaker's half-open probe) can
        distinguish "server down" from "that one object is bad" without
        paying for an array scan.  ``store_reachable`` confirms the local
        mount answers a metadata call.
        """
        try:
            self.fs.listdir("")
            store_reachable = True
        except Exception:
            store_reachable = False
        served = int(self._requests.value)
        draining = self._listener is not None and self._listener.draining
        if draining:
            status = "draining"
        elif store_reachable:
            status = "ok"
        else:
            status = "degraded"
        out = {
            "status": status,
            "store_reachable": store_reachable,
            "draining": draining,
            "requests_served": served,
            "admission": self.admission.info(),
            "integrity_failures": int(self._integrity_failures.value),
            "array_cache": self._cache_info(self.array_cache),
            "selection_cache": self._cache_info(self.selection_cache),
            "hedged_requests": int(self._hedged_requests.value),
            "failover_requests": int(self._failover_requests.value),
        }
        version = self._current_map_version()
        if version is not None:
            out["map_version"] = version
        if self._fair_queue is not None:
            out["serving_core"] = "async"
            out["fair_queue"] = self._fair_queue.info()
        if self.slo is not None:
            snap = self.slo.snapshot()
            out["slo"] = {
                "tenants": len(snap["tenants"]),
                "burning": sorted(
                    name for name, state in snap["tenants"].items()
                    if state.get("burning")
                ),
            }
        return out

    @staticmethod
    def _cache_info(cache) -> dict:
        return cache.info() if cache is not None else {"enabled": False}

    def server_stats(self) -> dict:
        """Lifetime counters: offload calls, bytes scanned vs shipped.

        The scanned-to-shipped ratio is the server's aggregate view of the
        paper's data-reduction claim.  Reads the same registry instruments
        :meth:`stats_snapshot` exposes — one source of truth.
        """
        out = {
            "requests": int(self._requests.value),
            "prefilter_calls": int(self._prefilter_calls.value),
            "raw_bytes_scanned": int(self._raw_bytes_scanned.value),
            "wire_bytes_sent": int(self._wire_bytes_sent.value),
            "selected_points": int(self._selected_points.value),
        }
        scanned = out["raw_bytes_scanned"]
        out["reduction_ratio"] = (
            scanned / out["wire_bytes_sent"] if out["wire_bytes_sent"] else 0.0
        )
        out["array_cache"] = self._cache_info(self.array_cache)
        out["selection_cache"] = self._cache_info(self.selection_cache)
        out["admission"] = self.admission.info()
        if self._fair_queue is not None:
            out["fair_queue"] = self._fair_queue.info()
        out["integrity_failures"] = int(self._integrity_failures.value)
        out["hedged_requests"] = int(self._hedged_requests.value)
        out["failover_requests"] = int(self._failover_requests.value)
        version = self._current_map_version()
        if version is not None:
            out["map_version"] = version
        return out

    def stats_snapshot(self) -> dict:
        """The unified registry snapshot (the ``stats`` RPC endpoint).

        One msgpack-safe tree holding every counter, the request-latency
        histograms, and both caches' stats — what ``repro stats <addr>``
        pretty-prints and the Prometheus exporter renders.
        """
        return self.registry.snapshot()

    def dump_flight(self, reason: str = "rpc",
                    last_seconds: float | None = None) -> dict:
        """The ``dump`` RPC endpoint: snapshot the flight ring.

        Returns the recorded events (msgpack-safe dicts) plus the path of
        the JSONL file written server-side when a ``dump_dir`` is
        configured — so ``repro dump <addr>`` works even against a server
        whose disk the operator cannot reach.
        """
        if not self.recorder:
            return {"enabled": False, "events": [], "path": None}
        path = self.recorder.dump(reason=reason, last_seconds=last_seconds)
        return {
            "enabled": True,
            "path": path,
            "events": self.recorder.snapshot(last_seconds),
            "info": self.recorder.info(),
        }

    def profile_snapshot(self, top: int | None = None) -> dict:
        """The ``profile`` RPC endpoint: collapsed flamegraph stacks."""
        return self.profiler.snapshot(top=top)

    def prefilter_threshold(
        self,
        key: str,
        array: str,
        lower: float,
        upper: float,
        encoding: str = "auto",
        wire_codec: str = "lz4",
    ) -> dict:
        """Offloaded threshold: ship exactly the in-range points."""

        def compute() -> dict:
            grid, entry = self._load_array(key, array)
            check_deadline("pre-filter scan")
            with self.tracer.span("prefilter", kind="threshold", key=key,
                                  array=array):
                if self.testbed is not None:
                    self.testbed.charge_filter_scan(entry.raw_bytes)
                selection = prefilter_threshold(grid, array, lower, upper)
            return self._finish(selection, entry, encoding, wire_codec)

        return self._reply(
            ("threshold", key, array, float(lower), float(upper),
             encoding, wire_codec),
            key, compute,
        )

    def prefilter_slice(
        self,
        key: str,
        array: str,
        axis: int,
        coordinate: float,
        encoding: str = "auto",
        wire_codec: str = "lz4",
    ) -> dict:
        """Offloaded axis-aligned slice: ship the bracketing planes."""

        def compute() -> dict:
            grid, entry = self._load_array(key, array)
            check_deadline("pre-filter scan")
            with self.tracer.span("prefilter", kind="slice", key=key,
                                  array=array):
                if self.testbed is not None:
                    self.testbed.charge_filter_scan(entry.raw_bytes)
                selection = prefilter_slice(grid, array, axis, coordinate)
            return self._finish(selection, entry, encoding, wire_codec)

        return self._reply(
            ("slice", key, array, int(axis), float(coordinate),
             encoding, wire_codec),
            key, compute,
        )

    def prefilter_batch(self, key: str, requests: list) -> list:
        """Run several pre-filters against one object in one round trip.

        Each request is a dict with a ``kind`` ("contour" / "threshold" /
        "slice") plus that kind's arguments (contours may carry a ``roi``
        6-tuple, forwarded unchanged).  Each distinct ``(key, array)``
        block is read **once** per batch — a per-thread memo shares the
        decoded grid across the batch's requests even when the shared
        caches are disabled — and the client pays a single RPC round trip:
        the paper's multi-instance pipelines (one filter per array,
        Sec. VI) map onto this directly.
        """
        self._batch_local.memo = {}
        try:
            replies = []
            for req in requests:
                kind = req.get("kind")
                common = {
                    "encoding": req.get("encoding", "auto"),
                    "wire_codec": req.get("wire_codec", "lz4"),
                }
                if kind == "contour":
                    replies.append(
                        self.prefilter_contour(
                            key, req["array"], req["values"],
                            req.get("mode", "cell-closure"),
                            roi=req.get("roi"), **common,
                        )
                    )
                elif kind == "threshold":
                    replies.append(
                        self.prefilter_threshold(
                            key, req["array"], req["lower"], req["upper"], **common
                        )
                    )
                elif kind == "slice":
                    replies.append(
                        self.prefilter_slice(
                            key, req["array"], req["axis"], req["coordinate"], **common
                        )
                    )
                else:
                    raise RPCError(f"unknown batch request kind {kind!r}")
            return replies
        finally:
            self._batch_local.memo = None

    def probe_selectivity(
        self,
        key: str,
        array: str,
        values: list,
        mode: str = "cell-closure",
    ) -> dict:
        """Measure a contour's selection statistics without transferring it.

        Costs one storage-side array read + scan but only a ~100-byte
        reply — clients probe a representative timestep once, then let the
        offload planner route every subsequent load (see
        :class:`~repro.core.planner.AdaptiveContourClient`).
        """
        grid, entry = self._load_array(key, array)
        if self.testbed is not None:
            self.testbed.charge_filter_scan(entry.raw_bytes)
        selection = prefilter_contour(grid, array, values, mode=mode)
        encoded = encode_selection(selection, payload_codec="lz4")
        return {
            "stored_bytes": entry.stored_bytes,
            "raw_bytes": entry.raw_bytes,
            "codec": entry.codec,
            "selected_points": int(selection.count),
            "total_points": int(selection.total_points),
            "selectivity": selection.selectivity,
            "permillage": selection.permillage,
            "wire_bytes": wire_size(encoded),
        }

    def array_statistics(self, key: str, array: str, bins: int = 32) -> dict:
        """Summary statistics + histogram of a stored array.

        How an interactive client picks contour values without pulling the
        array: min/max/mean/std and a histogram cross the wire instead of
        the data (the same near-data idea applied to value exploration).
        """
        if not 1 <= int(bins) <= 4096:
            raise RPCError(f"bins must be in [1, 4096], got {bins}")
        grid, entry = self._load_array(key, array)
        if self.testbed is not None:
            self.testbed.charge_filter_scan(entry.raw_bytes)
        values = grid.point_data.get(array).values.astype(np.float64)
        counts, edges = np.histogram(values, bins=int(bins))
        return {
            "count": int(values.size),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "std": float(values.std()),
            "histogram_counts": [int(c) for c in counts],
            "histogram_edges": [float(e) for e in edges],
            "stored_bytes": entry.stored_bytes,
            "raw_bytes": entry.raw_bytes,
        }

    def render_contour(
        self,
        key: str,
        array: str,
        values: list,
        width: int = 640,
        height: int = 480,
        color: list | None = None,
    ) -> dict:
        """Server-side rendering: contour AND rasterize near the data.

        The third placement option (ParaView's render-server mode): only
        pixels cross the network.  Returns a PPM frame plus stats; the
        bench ``test_ext_strategies`` compares all three placements.
        """
        from repro.filters.contour import contour_grid
        from repro.io.ppm import encode_ppm
        from repro.render.scene import Scene

        grid, entry = self._load_array(key, array)
        if self.testbed is not None:
            self.testbed.charge_filter_scan(entry.raw_bytes)
        polydata = contour_grid(grid, array, values)
        scene = Scene()
        scene.add_mesh(polydata, color=tuple(color) if color else (0.3, 0.75, 0.9))
        frame = encode_ppm(scene.render(int(width), int(height)))
        return {
            "ppm": frame,
            "stats": {
                "stored_bytes": entry.stored_bytes,
                "raw_bytes": entry.raw_bytes,
                "codec": entry.codec,
                "triangles": int(polydata.polys.num_cells),
                "wire_bytes": len(frame),
            },
        }

    def read_array(self, key: str, array: str) -> dict:
        """Whole-array fetch (baseline-through-RPC path)."""
        grid, entry = self._load_array(key, array)
        arr = grid.point_data.get(array)
        return {
            "dims": list(grid.dims),
            "origin": list(grid.origin),
            "spacing": list(grid.spacing),
            "array": array,
            "dtype": arr.values.dtype.str,
            "values": np.ascontiguousarray(arr.values).tobytes(),
            "stats": {
                "stored_bytes": entry.stored_bytes,
                "raw_bytes": entry.raw_bytes,
                "codec": entry.codec,
            },
        }

    # ------------------------------------------------------------------
    @property
    def dispatch(self):
        """Frame dispatcher, for in-process/simulated transports."""
        return self.rpc.dispatch

    def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int | None = None,
    ):
        """Listen on TCP; returns the started listener.

        The listener is remembered so :meth:`health` can report
        ``draining`` while a graceful ``stop(drain_timeout=...)`` runs.
        """
        from repro.rpc.transport import TCPServerTransport

        self._listener = TCPServerTransport(
            self.rpc.dispatch, host=host, port=port,
            max_connections=max_connections,
        ).start()
        return self._arm_observability(self._listener)

    def serve_async_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int | None = None,
        workers: int = 8,
        tenant_weights: dict[str, float] | None = None,
        tenant_inflight: int = 0,
        tenant_pending: int = 0,
    ):
        """Listen with the event-loop serving core (pipelined, multiplexed).

        One I/O thread multiplexes every connection and ``workers``
        threads run dispatch through a
        :class:`~repro.rpc.fairshare.FairScheduler`, so requests from a
        flooding tenant queue behind their fair share instead of starving
        everyone else.  Per-tenant sheds are recorded on this server's
        :class:`~repro.rpc.admission.AdmissionController` — ``health`` and
        ``stats`` keep one overload ledger either way.  Same wire
        protocol and drain contract as :meth:`serve_tcp`.
        """
        from repro.rpc.fairshare import FairScheduler
        from repro.rpc.mux import AsyncServerTransport

        self._fair_queue = FairScheduler(
            self.rpc.dispatch,
            workers=workers,
            weights=tenant_weights,
            max_tenant_inflight=tenant_inflight,
            max_tenant_pending=tenant_pending,
            admission=self.admission,
            recorder=self.recorder if self.recorder else None,
            slo=self.slo,
            slo_shed=self.slo_shed,
        )
        self.registry.register("fair_queue", self._fair_queue.info)
        self._listener = AsyncServerTransport(
            self.rpc.dispatch, host=host, port=port,
            max_connections=max_connections, scheduler=self._fair_queue,
        ).start()
        return self._arm_observability(self._listener)

    def _arm_observability(self, listener):
        """Start the profiler; dump the ring and stop it when serving ends.

        The listener's ``stop`` is wrapped rather than subclassed so both
        serving cores (threaded and async) get identical drain behaviour:
        after the transport finishes draining, the flight ring is dumped
        once (``reason="drain"``) and the profiler thread is joined — no
        leaked threads across restarts, and the final seconds of a
        graceful shutdown are always on disk.
        """
        self.profiler.start()
        inner_stop = listener.stop

        def stop(*args, **kwargs):
            try:
                return inner_stop(*args, **kwargs)
            finally:
                self.profiler.stop()
                if self.recorder:
                    self.recorder.dump(reason="drain")

        listener.stop = stop
        return listener
