"""Pre/post splits for further filter types (the paper's future work).

The paper's prototype splits only the contour filter and its conclusion
flags generalization as future work ("our current experiments were
limited to a single filter type").  Two more selective filters split
naturally onto the same :class:`~repro.grid.selection.PointSelection`
hand-off:

* **threshold** — the pre-filter ships exactly the in-range points; the
  post-filter materializes them as vertex geometry.  Selectivity equals
  the range's volume fraction.
* **axis-aligned slice** — the pre-filter ships the one or two lattice
  planes bracketing the slice coordinate (a 2/N fraction of the grid);
  the post-filter interpolates the plane exactly as the stock filter
  does.

Both reconstructions are bit-exact against their stock filters, with the
same argument shape as the contour split: the selection carries true
values for every point the downstream kernel will read.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FilterError
from repro.filters.slice import slice_grid, slice_plane_indices
from repro.filters.threshold import threshold_point_ids
from repro.grid.array import DataArray
from repro.grid.cells import point_count
from repro.grid.polydata import CellArray, PolyData
from repro.grid.selection import PointSelection
from repro.grid.uniform import UniformGrid

__all__ = [
    "prefilter_threshold",
    "postfilter_threshold",
    "prefilter_slice",
    "postfilter_slice",
]


# ---------------------------------------------------------------------------
# Threshold
# ---------------------------------------------------------------------------


def prefilter_threshold(
    grid: UniformGrid, array_name: str, lower: float, upper: float
) -> PointSelection:
    """Storage-side half of :class:`~repro.filters.threshold.ThresholdPoints`."""
    ids = threshold_point_ids(grid, array_name, lower, upper)
    return PointSelection.from_grid(grid, array_name, ids)


def postfilter_threshold(selection: PointSelection) -> PolyData:
    """Client-side half: materialize the selected points as vertices.

    Identical to running the stock threshold filter on the full grid: the
    selection *is* the filter's result set, so no recomputation is needed
    — thresholding is the ideal offload case.
    """
    if selection.axes is not None:
        from repro.grid.rectilinear import RectilinearGrid

        grid = RectilinearGrid(*selection.axes)
    else:
        grid = UniformGrid(selection.dims, selection.origin, selection.spacing)
    points = grid.point_ids_to_coords(selection.ids)
    out = PolyData(points)
    out.verts = CellArray.from_uniform(
        np.arange(selection.count, dtype=np.int64).reshape(-1, 1)
    )
    out.point_data.add(DataArray(selection.array_name, selection.values.copy()))
    return out


# ---------------------------------------------------------------------------
# Axis-aligned slice
# ---------------------------------------------------------------------------


def prefilter_slice(
    grid: UniformGrid, array_name: str, axis: int, coordinate: float
) -> PointSelection:
    """Storage-side half of :class:`~repro.filters.slice.SliceFilter`.

    Ships the lattice plane(s) bracketing ``coordinate`` — everything the
    client-side interpolation will read.
    """
    i0, i1, _t = slice_plane_indices(grid, axis, coordinate)
    nx, ny, _nz = grid.dims
    strides = (1, nx, nx * ny)
    stride = strides[axis]
    n_plane = point_count(grid.dims) // grid.dims[axis]
    # Flat ids of every point on plane index i along `axis`: enumerate the
    # other two axes in id order.
    all_ids = np.arange(point_count(grid.dims), dtype=np.int64)
    axis_index = (all_ids // stride) % grid.dims[axis]
    ids = all_ids[(axis_index == i0) | (axis_index == i1)]
    if ids.size not in (n_plane, 2 * n_plane):
        raise FilterError("internal error: plane extraction miscounted")
    return PointSelection.from_grid(grid, array_name, ids)


def postfilter_slice(
    selection: PointSelection, axis: int, coordinate: float
) -> PolyData:
    """Client-side half: interpolate the slice from the shipped planes.

    Bit-exact against :func:`~repro.filters.slice.slice_grid` on the full
    grid: the interpolation reads only the bracketing planes, which the
    selection carries with true values.
    """
    grid, mask = selection.to_grid(fill=np.nan)
    i0, i1, _t = slice_plane_indices(grid, axis, coordinate)
    # Guard: the planes the kernel will read must be fully present.
    nx, ny, _nz = grid.dims
    stride = (1, nx, nx * ny)[axis]
    axis_index = (np.arange(mask.size) // stride) % grid.dims[axis]
    needed = (axis_index == i0) | (axis_index == i1)
    if not mask[needed].all():
        raise FilterError(
            "selection does not contain the planes required for this slice"
        )
    return slice_grid(grid, axis, coordinate, [selection.array_name])
