"""The client-side NDP source (paper Fig. 10, right half / Fig. 11a).

:class:`NDPContourSource` is what replaces the reader in the client's
pipeline: instead of pulling whole arrays through a remote mount, it asks
the storage-side :class:`~repro.core.ndp_server.NDPServer` to run the
pre-filter and emits the decoded
:class:`~repro.grid.selection.PointSelection`, ready for a
:class:`~repro.core.postfilter.ContourPostFilter`.

:func:`ndp_contour` is the one-call convenience wrapping source +
post-filter for scripts.

:class:`FallbackPolicy` is the graceful-degradation half of the fault
story: when the NDP hop is unreachable (transport errors survive the
resilient transport's retries, or its circuit breaker is open), the client
falls back to the paper's *baseline* placement — a full-array read through
its own s3fs mount, contoured locally.  The pre/post-filter invariant
guarantees the geometry is identical either way; only the cost differs,
and that difference is surfaced through
:class:`~repro.storage.metrics.ResilienceStats`.
"""

from __future__ import annotations

from repro.core.encoding import decode_selection
from repro.core.postfilter import postfilter_contour
from repro.errors import (
    CircuitOpenError,
    IntegrityError,
    PipelineError,
    RPCTransportError,
)
from repro.filters.contour import _values_unset, contour_grid, normalize_values
from repro.grid.polydata import PolyData
from repro.grid.selection import PointSelection
from repro.pipeline.source import Source
from repro.rpc.client import RPCClient
from repro.storage.metrics import ResilienceStats

__all__ = [
    "NDPContourSource",
    "FallbackPolicy",
    "ndp_contour",
    "ndp_threshold",
    "ndp_slice",
    "ndp_batch",
    "ndp_cluster_contour",
]


class NDPContourSource(Source):
    """Pipeline source that fetches a pre-filtered selection over RPC.

    Parameters
    ----------
    client:
        An :class:`~repro.rpc.client.RPCClient` connected to an NDP server.
    key, array_name, values:
        Which object/array to contour and at which values.
    mode, encoding:
        Selection mode and wire encoding, forwarded to the server.
    """

    def __init__(
        self,
        client: RPCClient | None = None,
        key: str | None = None,
        array_name: str | None = None,
        values=(),
        mode: str = "cell-closure",
        encoding: str = "auto",
        wire_codec: str = "lz4",
    ):
        super().__init__()
        self._client = client
        self._key = key
        self._array_name = array_name
        self._values: tuple[float, ...] = ()
        self._mode = mode
        self._encoding = encoding
        self._wire_codec = wire_codec
        self.last_stats: dict | None = None
        # Emptiness test that is safe for numpy arrays (``values != ()``
        # would be elementwise and ambiguous).
        if not _values_unset(values):
            self.set_values(values)

    # ------------------------------------------------------------------
    def set_client(self, client: RPCClient) -> None:
        self._client = client
        self.modified()

    def set_key(self, key: str) -> None:
        self._key = key
        self.modified()

    def set_array_name(self, name: str) -> None:
        self._array_name = name
        self.modified()

    def set_values(self, values) -> None:
        self._values = normalize_values(values)
        self.modified()

    @property
    def values(self) -> tuple[float, ...]:
        return self._values

    # ------------------------------------------------------------------
    def _execute(self) -> PointSelection:
        if self._client is None:
            raise PipelineError("NDPContourSource has no RPC client")
        if self._key is None or self._array_name is None or not self._values:
            raise PipelineError(
                "NDPContourSource needs key, array_name, and values configured"
            )
        encoded = self._client.call(
            "prefilter_contour",
            self._key,
            self._array_name,
            list(self._values),
            self._mode,
            self._encoding,
            self._wire_codec,
        )
        self.last_stats = encoded.get("stats")
        return decode_selection(encoded)


class FallbackPolicy:
    """Degrade an NDP call to the baseline full-array read when the hop fails.

    Parameters
    ----------
    fs:
        The client-side mount (a :class:`~repro.storage.s3fs.S3FileSystem`
        whose ``link``, if any, models the client<->storage network): the
        baseline placement of paper Fig. 11b.  Must see the same bucket the
        NDP server serves.
    triggers:
        Exception classes that justify falling back.  Defaults to transport
        failures (including timeouts), an open circuit breaker, and
        integrity failures (a corrupted NDP reply or storage-side read —
        after the one re-read :func:`ndp_contour` performs — degrades to
        the baseline read, which verifies its own checksums, so a
        corrupted storage node yields a loud error or correct geometry,
        never wrong geometry).  Remote handler errors (``RPCRemoteError``)
        are *not* in the default set: they are deterministic — the
        baseline read would hit the same problem — so falling back would
        only mask them.
    stats:
        Optional shared :class:`~repro.storage.metrics.ResilienceStats`;
        records ``fallbacks`` / ``ndp_successes`` / ``fallback_bytes`` and
        keeps the last fallback reason for operator visibility.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; a degrade records an
        ``ndp.fallback`` event on the current span and times the baseline
        read in a ``fallback.read`` child span.
    """

    def __init__(
        self,
        fs,
        triggers: tuple[type[BaseException], ...] = (
            RPCTransportError,
            CircuitOpenError,
            IntegrityError,
        ),
        stats: ResilienceStats | None = None,
        tracer=None,
    ):
        from repro.obs.trace import NULL_TRACER

        self.fs = fs
        self.triggers = tuple(triggers)
        self.stats = stats if stats is not None else ResilienceStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def should_fallback(self, exc: BaseException) -> bool:
        return isinstance(exc, self.triggers)

    # ------------------------------------------------------------------
    def record_ndp_success(self) -> None:
        self.stats.record("ndp_successes")

    def contour(
        self, key: str, array_name: str, values, roi=None, reason: BaseException | None = None
    ) -> tuple[PolyData, dict]:
        """Baseline contour: full array through ``fs``, filtered locally.

        Returns ``(polydata, stats)`` shaped like the NDP reply's stats so
        callers can stay path-agnostic; ``stats["path"]`` says which way
        the data came.
        """
        from repro.io.vgf import read_vgf_array, read_vgf_info

        self.tracer.add_event(
            "ndp.fallback",
            reason=f"{type(reason).__name__}: {reason}" if reason else "requested",
        )
        with self.tracer.span("fallback.read", key=key, array=array_name):
            with self.fs.open(key) as fh:
                info = read_vgf_info(fh)
                entry = info.array(array_name)
                arr, _ = read_vgf_array(fh, array_name, info)
        grid = info.make_grid()
        grid.point_data.add(arr)
        with self.tracer.span("fallback.contour"):
            polydata = contour_grid(grid, array_name, values, roi=roi)
        self.stats.record("fallbacks")
        self.stats.record("fallback_bytes", entry.stored_bytes)
        self.stats.last_fallback_reason = (
            f"{type(reason).__name__}: {reason}" if reason is not None else None
        )
        stats = {
            "path": "fallback",
            "stored_bytes": entry.stored_bytes,
            "raw_bytes": entry.raw_bytes,
            "codec": entry.codec,
            # The whole stored block crossed the client's mount: with no
            # pre-filter there is no reduction to report.
            "wire_bytes": entry.stored_bytes,
            "fallback_reason": self.stats.last_fallback_reason,
        }
        return polydata, stats


def ndp_threshold(
    client: RPCClient,
    key: str,
    array_name: str,
    lower: float,
    upper: float,
    wire_codec: str = "lz4",
) -> tuple[PolyData, dict | None]:
    """Offloaded threshold filter: vertices for every in-range point."""
    from repro.core.filter_splits import postfilter_threshold

    encoded = client.call(
        "prefilter_threshold", key, array_name, float(lower), float(upper),
        "auto", wire_codec,
    )
    selection = decode_selection(encoded)
    return postfilter_threshold(selection), encoded.get("stats")


def ndp_slice(
    client: RPCClient,
    key: str,
    array_name: str,
    axis: int,
    coordinate: float,
    wire_codec: str = "lz4",
) -> tuple[PolyData, dict | None]:
    """Offloaded axis-aligned slice: interpolated plane geometry."""
    from repro.core.filter_splits import postfilter_slice

    encoded = client.call(
        "prefilter_slice", key, array_name, int(axis), float(coordinate),
        "auto", wire_codec,
    )
    selection = decode_selection(encoded)
    return postfilter_slice(selection, int(axis), float(coordinate)), encoded.get("stats")


def ndp_batch(client: RPCClient, key: str, requests: list[dict]) -> list:
    """Several offloaded pre-filters in one round trip.

    Returns one finished :class:`~repro.grid.polydata.PolyData` per
    request (post-filters run locally), each paired with its stats dict.
    Contour requests may carry a ``roi`` (a
    :class:`~repro.grid.bounds.Bounds` or 6-sequence); it is forwarded to
    the server and applied identically in the local post-filter, so a
    batched ROI contour matches the direct-call geometry bit for bit.
    """
    from repro.core.filter_splits import postfilter_slice, postfilter_threshold
    from repro.grid.bounds import Bounds

    def roi_list(req: dict) -> list | None:
        roi = req.get("roi")
        if roi is None:
            return None
        if hasattr(roi, "as_tuple"):
            roi = roi.as_tuple()
        return [float(v) for v in roi]

    wire_requests = []
    for req in requests:
        roi = roi_list(req)
        wire_requests.append(dict(req, roi=roi) if roi is not None else dict(req))
    replies = client.call("prefilter_batch", key, wire_requests)
    results = []
    for req, encoded in zip(requests, replies):
        selection = decode_selection(encoded)
        kind = req["kind"]
        if kind == "contour":
            roi = roi_list(req)
            pd = postfilter_contour(
                selection, req["values"],
                roi=Bounds(*roi) if roi is not None else None,
            )
        elif kind == "threshold":
            pd = postfilter_threshold(selection)
        elif kind == "slice":
            pd = postfilter_slice(selection, req["axis"], req["coordinate"])
        else:
            raise ValueError(f"unknown batch request kind {kind!r}")
        results.append((pd, encoded.get("stats")))
    return results


def ndp_contour(
    client: RPCClient,
    key: str,
    array_name: str,
    values,
    mode: str = "cell-closure",
    encoding: str = "auto",
    wire_codec: str = "lz4",
    roi=None,
    fallback: FallbackPolicy | None = None,
) -> tuple[PolyData, dict | None]:
    """One-call NDP contour: offload the pre-filter, finish locally.

    Returns ``(polydata, stats)`` where ``stats`` is the server's phase
    report (stored/raw/wire bytes, selection counts).  ``roi`` is an
    optional :class:`~repro.grid.bounds.Bounds` region of interest,
    applied identically on both sides.

    With a :class:`FallbackPolicy`, transport-level failures (after
    whatever retrying the client's transport performs) degrade to the
    baseline full-array read instead of raising; the returned geometry is
    identical either way and ``stats["path"]`` records which path served
    the request.  A checksum mismatch (:class:`~repro.errors.IntegrityError`,
    detected at decode or reported by the server's at-rest verification)
    triggers exactly one re-read before the fallback applies — corrupted
    data can delay a contour but never silently change it.

    With a traced client (see :class:`~repro.rpc.client.RPCClient`) the
    whole operation runs inside an ``ndp.contour`` span: the RPC hop,
    the server's remote subtree, the local post-filter, and any fallback
    all nest under it — the complete end-to-end request tree.
    """
    tracer = client.tracer

    def run_ndp() -> tuple[PolyData, dict | None]:
        if roi is not None:
            encoded = client.call(
                "prefilter_contour", key, array_name,
                list(normalize_values(values)),
                mode, encoding, wire_codec, list(roi.as_tuple()),
            )
            selection = decode_selection(encoded)
            with tracer.span("postfilter"):
                polydata = postfilter_contour(selection, values, roi=roi)
            return polydata, encoded.get("stats")
        source = NDPContourSource(
            client, key, array_name, values, mode, encoding, wire_codec
        )
        selection = source.output()
        with tracer.span("postfilter"):
            polydata = postfilter_contour(selection, values)
        return polydata, source.last_stats

    with tracer.span("ndp.contour", key=key, array=array_name):
        try:
            try:
                polydata, stats = run_ndp()
            except IntegrityError as exc:
                # Corruption is often transient (a flipped bit in flight):
                # re-read exactly once.  The server never caches errors and
                # keys its caches by store version, so the retry reaches
                # honest bytes — a clean cached reply, or a fresh read.
                tracer.add_event(
                    "integrity.retry", cause=f"{type(exc).__name__}: {exc}"
                )
                if fallback is not None:
                    fallback.stats.record("integrity_retries")
                polydata, stats = run_ndp()
        except Exception as exc:
            if fallback is None or not fallback.should_fallback(exc):
                raise
            return fallback.contour(key, array_name, values, roi=roi, reason=exc)
        if stats is not None:
            stats.setdefault("path", "ndp")
        if fallback is not None:
            fallback.record_ndp_success()
        return polydata, stats


def ndp_cluster_contour(cluster, array_name: str, values, roi=None):
    """Contour against a sharded NDP cluster (scatter–gather path).

    ``cluster`` is a :class:`~repro.cluster.shard_client.ClusterClient`;
    this thin wrapper exists so call sites can treat monolithic
    (:func:`ndp_contour`) and sharded contouring uniformly: both return
    ``(polydata, stats)`` and both are bit-identical to the baseline
    full-read pipeline.  Per-shard resilience and fallback live inside
    the cluster client itself (one failure domain per shard), not in a
    wrapping :class:`FallbackPolicy`.
    """
    return cluster.contour(array_name, values, roi=roi)
