"""The client-side NDP source (paper Fig. 10, right half / Fig. 11a).

:class:`NDPContourSource` is what replaces the reader in the client's
pipeline: instead of pulling whole arrays through a remote mount, it asks
the storage-side :class:`~repro.core.ndp_server.NDPServer` to run the
pre-filter and emits the decoded
:class:`~repro.grid.selection.PointSelection`, ready for a
:class:`~repro.core.postfilter.ContourPostFilter`.

:func:`ndp_contour` is the one-call convenience wrapping source +
post-filter for scripts.
"""

from __future__ import annotations

from repro.core.encoding import decode_selection
from repro.core.postfilter import postfilter_contour
from repro.errors import PipelineError
from repro.filters.contour import normalize_values
from repro.grid.polydata import PolyData
from repro.grid.selection import PointSelection
from repro.pipeline.source import Source
from repro.rpc.client import RPCClient

__all__ = ["NDPContourSource", "ndp_contour", "ndp_threshold", "ndp_slice", "ndp_batch"]


class NDPContourSource(Source):
    """Pipeline source that fetches a pre-filtered selection over RPC.

    Parameters
    ----------
    client:
        An :class:`~repro.rpc.client.RPCClient` connected to an NDP server.
    key, array_name, values:
        Which object/array to contour and at which values.
    mode, encoding:
        Selection mode and wire encoding, forwarded to the server.
    """

    def __init__(
        self,
        client: RPCClient | None = None,
        key: str | None = None,
        array_name: str | None = None,
        values=(),
        mode: str = "cell-closure",
        encoding: str = "auto",
        wire_codec: str = "lz4",
    ):
        super().__init__()
        self._client = client
        self._key = key
        self._array_name = array_name
        self._values: tuple[float, ...] = ()
        self._mode = mode
        self._encoding = encoding
        self._wire_codec = wire_codec
        self.last_stats: dict | None = None
        if values != () and values is not None:
            self.set_values(values)

    # ------------------------------------------------------------------
    def set_client(self, client: RPCClient) -> None:
        self._client = client
        self.modified()

    def set_key(self, key: str) -> None:
        self._key = key
        self.modified()

    def set_array_name(self, name: str) -> None:
        self._array_name = name
        self.modified()

    def set_values(self, values) -> None:
        self._values = normalize_values(values)
        self.modified()

    @property
    def values(self) -> tuple[float, ...]:
        return self._values

    # ------------------------------------------------------------------
    def _execute(self) -> PointSelection:
        if self._client is None:
            raise PipelineError("NDPContourSource has no RPC client")
        if self._key is None or self._array_name is None or not self._values:
            raise PipelineError(
                "NDPContourSource needs key, array_name, and values configured"
            )
        encoded = self._client.call(
            "prefilter_contour",
            self._key,
            self._array_name,
            list(self._values),
            self._mode,
            self._encoding,
            self._wire_codec,
        )
        self.last_stats = encoded.get("stats")
        return decode_selection(encoded)


def ndp_threshold(
    client: RPCClient,
    key: str,
    array_name: str,
    lower: float,
    upper: float,
    wire_codec: str = "lz4",
) -> tuple[PolyData, dict | None]:
    """Offloaded threshold filter: vertices for every in-range point."""
    from repro.core.filter_splits import postfilter_threshold

    encoded = client.call(
        "prefilter_threshold", key, array_name, float(lower), float(upper),
        "auto", wire_codec,
    )
    selection = decode_selection(encoded)
    return postfilter_threshold(selection), encoded.get("stats")


def ndp_slice(
    client: RPCClient,
    key: str,
    array_name: str,
    axis: int,
    coordinate: float,
    wire_codec: str = "lz4",
) -> tuple[PolyData, dict | None]:
    """Offloaded axis-aligned slice: interpolated plane geometry."""
    from repro.core.filter_splits import postfilter_slice

    encoded = client.call(
        "prefilter_slice", key, array_name, int(axis), float(coordinate),
        "auto", wire_codec,
    )
    selection = decode_selection(encoded)
    return postfilter_slice(selection, int(axis), float(coordinate)), encoded.get("stats")


def ndp_batch(client: RPCClient, key: str, requests: list[dict]) -> list:
    """Several offloaded pre-filters in one round trip.

    Returns one finished :class:`~repro.grid.polydata.PolyData` per
    request (post-filters run locally), each paired with its stats dict.
    """
    from repro.core.filter_splits import postfilter_slice, postfilter_threshold

    replies = client.call("prefilter_batch", key, requests)
    results = []
    for req, encoded in zip(requests, replies):
        selection = decode_selection(encoded)
        kind = req["kind"]
        if kind == "contour":
            pd = postfilter_contour(selection, req["values"])
        elif kind == "threshold":
            pd = postfilter_threshold(selection)
        elif kind == "slice":
            pd = postfilter_slice(selection, req["axis"], req["coordinate"])
        else:
            raise ValueError(f"unknown batch request kind {kind!r}")
        results.append((pd, encoded.get("stats")))
    return results


def ndp_contour(
    client: RPCClient,
    key: str,
    array_name: str,
    values,
    mode: str = "cell-closure",
    encoding: str = "auto",
    wire_codec: str = "lz4",
    roi=None,
) -> tuple[PolyData, dict | None]:
    """One-call NDP contour: offload the pre-filter, finish locally.

    Returns ``(polydata, stats)`` where ``stats`` is the server's phase
    report (stored/raw/wire bytes, selection counts).  ``roi`` is an
    optional :class:`~repro.grid.bounds.Bounds` region of interest,
    applied identically on both sides.
    """
    if roi is not None:
        encoded = client.call(
            "prefilter_contour", key, array_name, list(normalize_values(values)),
            mode, encoding, wire_codec, list(roi.as_tuple()),
        )
        selection = decode_selection(encoded)
        return (
            postfilter_contour(selection, values, roi=roi),
            encoded.get("stats"),
        )
    source = NDPContourSource(client, key, array_name, values, mode, encoding, wire_codec)
    selection = source.output()
    return postfilter_contour(selection, values), source.last_stats
