"""The storage-side pre-filter: full array in, sparse selection out.

The paper's pre-filter "takes a full VTK data array as input and extracts
a subarray that contains only the data points relevant to the contour
being generated" (Sec. VI).  Two selection modes:

* ``"edge"`` — exactly the points incident to an interesting edge: the
  paper's definition, and the statistic its Fig. 6 reports.  Sufficient to
  place every contour vertex, but a cell can emit geometry while owning a
  corner that touches no interesting edge, so reconstruction from this set
  alone is *approximate* at such cells.
* ``"cell-closure"`` (default) — every corner of every cell that will emit
  geometry.  A strict superset of ``"edge"`` of the same order of
  magnitude, and the minimal set from which the post-filter provably
  rebuilds the contour bit-exactly.  This refinement over the paper's
  description is what makes DESIGN.md §5 invariant 1 hold.
"""

from __future__ import annotations

import numpy as np

from repro.core.interesting import (
    cell_closure_point_mask,
    cell_mask_to_point_mask,
    interesting_point_mask,
    roi_cell_mask,
)
from repro.errors import FilterError, FormatError
from repro.filters.contour import normalize_values
from repro.grid.selection import PointSelection
from repro.grid.uniform import UniformGrid
from repro.pipeline.filter_base import Filter

from repro.filters.contour import STRUCTURED_GRID_TYPES

__all__ = [
    "prefilter_contour",
    "prefilter_contour_stream",
    "selection_rate",
    "ContourPreFilter",
    "SELECTION_MODES",
]

SELECTION_MODES = ("cell-closure", "edge")

#: Decoded-window budget for the fused streaming scan (bytes of field
#: data per chunk, before the float64 classification cast).
_STREAM_WINDOW_BYTES = 4 << 20


def prefilter_contour(
    grid,
    array_name: str,
    values,
    mode: str = "cell-closure",
    roi=None,
) -> PointSelection:
    """Run the contour pre-filter on a grid's named scalar array.

    Returns the sparse :class:`~repro.grid.selection.PointSelection` that
    must travel to the client for the given contour ``values``.  ``roi``
    (a :class:`~repro.grid.bounds.Bounds`) restricts the selection to the
    cells inside an axis-aligned box — the post-filter must be given the
    same region.
    """
    if mode not in SELECTION_MODES:
        raise FilterError(f"unknown selection mode {mode!r}; use one of {SELECTION_MODES}")
    vals = normalize_values(values)
    field = grid.scalar_field(array_name)
    roi_cells = roi_cell_mask(grid, roi) if roi is not None else None
    if mode == "edge":
        mask = interesting_point_mask(field, vals)
        if roi_cells is not None:
            mask &= cell_mask_to_point_mask(roi_cells, field.shape)
    else:
        mask = cell_closure_point_mask(field, vals, cell_mask=roi_cells)
    ids = np.nonzero(mask.reshape(-1))[0].astype(np.int64)
    return PointSelection.from_grid(grid, array_name, ids)


class _LayerStream:
    """Serves consecutive grid point-layers out of a stream of buffers.

    Decoded bytes arrive as arbitrary-sized chunks (a streaming
    decompressor does not align to grid layers, or even to element
    boundaries); this adapter slices them into ``(n_layers, ny*nx)``
    element windows.  When a window falls inside one source buffer it is
    returned as a zero-copy view — the whole-block RAW case — and only
    windows straddling chunk boundaries are assembled by copy.
    """

    def __init__(self, buffers, layer_elems: int, dtype):
        self._it = iter(buffers)
        self._dt = np.dtype(dtype)
        self._layer = int(layer_elems)
        self._segs: list[tuple[int, np.ndarray]] = []  # (start elem, elems)
        self._fed = 0     # elements ingested so far
        self._served = 0  # element index just past the last served window
        self._tail = b""  # partial-element bytes carried between chunks

    def _ingest(self) -> bool:
        try:
            buf = next(self._it)
        except StopIteration:
            return False
        mv = memoryview(buf)
        if mv.format != "B" or mv.ndim != 1:
            mv = mv.cast("B")
        if self._tail:
            need = self._dt.itemsize - len(self._tail)
            self._tail += bytes(mv[:need])
            mv = mv[need:]
            if len(self._tail) == self._dt.itemsize:
                self._append(np.frombuffer(self._tail, dtype=self._dt))
                self._tail = b""
        usable = len(mv) - (len(mv) % self._dt.itemsize)
        if usable:
            self._append(np.frombuffer(mv[:usable], dtype=self._dt))
        if usable < len(mv):
            self._tail = bytes(mv[usable:])
        return True

    def _append(self, arr: np.ndarray) -> None:
        self._segs.append((self._fed, arr))
        self._fed += arr.size

    def take(self, n_layers: int, overlap: int = 0) -> np.ndarray:
        """Next window of ``n_layers`` layers, re-serving the last
        ``overlap`` layers of the previous window (the scan's one-layer
        seam).  Returns a flat ``(n_layers * ny * nx,)`` element array."""
        lo = self._served - overlap * self._layer
        hi = self._served + (n_layers - overlap) * self._layer
        while self._fed < hi:
            if not self._ingest():
                raise FormatError(
                    f"decoded stream truncated: holds {self._fed} elements "
                    f"but the scan needs at least {hi}"
                )
        # Segments entirely before the window can never be needed again.
        while self._segs and self._segs[0][0] + self._segs[0][1].size <= lo:
            self._segs.pop(0)
        self._served = hi
        start, first = self._segs[0]
        if start <= lo and start + first.size >= hi:
            return first[lo - start : hi - start]
        out = np.empty(hi - lo, dtype=self._dt)
        for s, arr in self._segs:
            a, b = max(s, lo), min(s + arr.size, hi)
            if a < b:
                out[a - lo : b - lo] = arr[a - s : b - s]
        return out

    def finish(self, expected_elems: int) -> None:
        """Drain the source and verify the stream held exactly the grid."""
        while self._ingest():
            pass
        if self._tail:
            raise FormatError(
                f"decoded stream ends mid-element ({len(self._tail)} stray "
                f"bytes for itemsize {self._dt.itemsize})"
            )
        if self._fed != expected_elems:
            raise FormatError(
                f"decoded stream holds {self._fed} elements; the grid "
                f"needs exactly {expected_elems}"
            )


def prefilter_contour_stream(
    buffers,
    dims,
    dtype,
    array_name: str,
    values,
    mode: str = "cell-closure",
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
    axes=None,
    chunk_layers: int = 0,
) -> PointSelection:
    """Fused streaming form of :func:`prefilter_contour`.

    Consumes the scalar field as a stream of decoded buffers (e.g.
    ``codec.iter_decompress(stored)``) and runs the interesting-scan per
    window of ``chunk_layers`` cell layers, so decompression and scan
    interleave and the whole decoded array, its float64 classification
    cast, and the full-grid boolean masks are never materialized at once.
    Selected ids/values are emitted per finalized slab; the result is
    byte-identical to materializing the grid and calling
    :func:`prefilter_contour`.

    ``dims`` is grid convention ``(nx, ny, nz)``; ``origin`` / ``spacing``
    / ``axes`` carry the structure into the returned selection.
    """
    if mode not in SELECTION_MODES:
        raise FilterError(f"unknown selection mode {mode!r}; use one of {SELECTION_MODES}")
    vals = normalize_values(values)
    nx, ny, nz = (int(d) for d in dims)
    if nx < 1 or ny < 1 or nz < 1:
        raise FilterError(f"bad grid dims {(nx, ny, nz)}")
    dt = np.dtype(dtype)
    layer = nx * ny
    if chunk_layers <= 0:
        chunk_layers = max(1, _STREAM_WINDOW_BYTES // max(1, layer * dt.itemsize))
    mask_fn = interesting_point_mask if mode == "edge" else cell_closure_point_mask

    stream = _LayerStream(buffers, layer, dt)
    ids_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []

    def emit(z0: int, mask_slab: np.ndarray, value_slab: np.ndarray) -> None:
        flat = np.flatnonzero(mask_slab)
        if flat.size:
            ids_parts.append(flat.astype(np.int64, copy=False) + z0 * layer)
            val_parts.append(value_slab.reshape(-1)[flat])

    if nz == 1:
        win = stream.take(1).reshape(1, ny, nx)
        emit(0, mask_fn(win, vals), win)
    else:
        # Iterate cell-layer chunks [c0, c1); each needs point layers
        # [c0, c1].  A point layer is finalized once both cell layers
        # touching it have been scanned, so the window's last layer mask
        # is carried into the next chunk (where the overlapping window
        # recomputes its in-window contributions identically).
        carry = None
        c0 = 0
        while c0 < nz - 1:
            c1 = min(c0 + chunk_layers, nz - 1)
            w = c1 - c0 + 1
            win = stream.take(w, overlap=0 if c0 == 0 else 1).reshape(w, ny, nx)
            mask = mask_fn(win, vals)
            if carry is not None:
                mask[0] |= carry
            if c1 < nz - 1:
                emit(c0, mask[:-1], win[:-1])
                carry = mask[-1].copy()
            else:
                emit(c0, mask, win)
            c0 = c1
    stream.finish(nx * ny * nz)

    if ids_parts:
        ids = np.concatenate(ids_parts)
        vals_out = np.concatenate(val_parts)
    else:
        ids = np.zeros(0, dtype=np.int64)
        vals_out = np.zeros(0, dtype=dt)
    return PointSelection(
        (nx, ny, nz), origin, spacing, array_name, ids, vals_out, axes=axes
    )


def selection_rate(grid, array_name: str, values) -> float:
    """The paper's Fig. 6 statistic: selected permillage under ``"edge"`` mode."""
    return prefilter_contour(grid, array_name, values, mode="edge").permillage


class ContourPreFilter(Filter):
    """Pipeline form of the pre-filter: :class:`UniformGrid` in,
    :class:`~repro.grid.selection.PointSelection` out.

    Configuration mirrors :class:`~repro.filters.contour.ContourFilter`, so
    :func:`~repro.core.split.split_contour_filter` can derive one from the
    other.
    """

    def __init__(self, array_name: str | None = None, values=(), mode: str = "cell-closure"):
        super().__init__()
        if mode not in SELECTION_MODES:
            raise FilterError(f"unknown selection mode {mode!r}")
        self._array_name = array_name
        self._values: tuple[float, ...] = ()
        self._mode = mode
        if values != () and values is not None:
            self.set_values(values)

    def set_array_name(self, name: str) -> None:
        self._array_name = name
        self.modified()

    @property
    def array_name(self) -> str | None:
        return self._array_name

    def set_values(self, values) -> None:
        self._values = normalize_values(values)
        self.modified()

    @property
    def values(self) -> tuple[float, ...]:
        return self._values

    def set_mode(self, mode: str) -> None:
        if mode not in SELECTION_MODES:
            raise FilterError(f"unknown selection mode {mode!r}")
        self._mode = mode
        self.modified()

    @property
    def mode(self) -> str:
        return self._mode

    def _execute(self, grid) -> PointSelection:
        if not isinstance(grid, STRUCTURED_GRID_TYPES):
            raise FilterError(
                f"ContourPreFilter expects a UniformGrid or RectilinearGrid, "
                f"got {type(grid).__name__}"
            )
        if self._array_name is None:
            raise FilterError("ContourPreFilter has no array name configured")
        if not self._values:
            raise FilterError("ContourPreFilter has no contour values configured")
        return prefilter_contour(grid, self._array_name, self._values, self._mode)
