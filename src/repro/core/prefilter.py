"""The storage-side pre-filter: full array in, sparse selection out.

The paper's pre-filter "takes a full VTK data array as input and extracts
a subarray that contains only the data points relevant to the contour
being generated" (Sec. VI).  Two selection modes:

* ``"edge"`` — exactly the points incident to an interesting edge: the
  paper's definition, and the statistic its Fig. 6 reports.  Sufficient to
  place every contour vertex, but a cell can emit geometry while owning a
  corner that touches no interesting edge, so reconstruction from this set
  alone is *approximate* at such cells.
* ``"cell-closure"`` (default) — every corner of every cell that will emit
  geometry.  A strict superset of ``"edge"`` of the same order of
  magnitude, and the minimal set from which the post-filter provably
  rebuilds the contour bit-exactly.  This refinement over the paper's
  description is what makes DESIGN.md §5 invariant 1 hold.
"""

from __future__ import annotations

import numpy as np

from repro.core.interesting import (
    cell_closure_point_mask,
    cell_mask_to_point_mask,
    interesting_point_mask,
    roi_cell_mask,
)
from repro.errors import FilterError
from repro.filters.contour import normalize_values
from repro.grid.selection import PointSelection
from repro.grid.uniform import UniformGrid
from repro.pipeline.filter_base import Filter

from repro.filters.contour import STRUCTURED_GRID_TYPES

__all__ = ["prefilter_contour", "selection_rate", "ContourPreFilter", "SELECTION_MODES"]

SELECTION_MODES = ("cell-closure", "edge")


def prefilter_contour(
    grid,
    array_name: str,
    values,
    mode: str = "cell-closure",
    roi=None,
) -> PointSelection:
    """Run the contour pre-filter on a grid's named scalar array.

    Returns the sparse :class:`~repro.grid.selection.PointSelection` that
    must travel to the client for the given contour ``values``.  ``roi``
    (a :class:`~repro.grid.bounds.Bounds`) restricts the selection to the
    cells inside an axis-aligned box — the post-filter must be given the
    same region.
    """
    if mode not in SELECTION_MODES:
        raise FilterError(f"unknown selection mode {mode!r}; use one of {SELECTION_MODES}")
    vals = normalize_values(values)
    field = grid.scalar_field(array_name)
    roi_cells = roi_cell_mask(grid, roi) if roi is not None else None
    if mode == "edge":
        mask = interesting_point_mask(field, vals)
        if roi_cells is not None:
            mask &= cell_mask_to_point_mask(roi_cells, field.shape)
    else:
        mask = cell_closure_point_mask(field, vals, cell_mask=roi_cells)
    ids = np.nonzero(mask.reshape(-1))[0].astype(np.int64)
    return PointSelection.from_grid(grid, array_name, ids)


def selection_rate(grid, array_name: str, values) -> float:
    """The paper's Fig. 6 statistic: selected permillage under ``"edge"`` mode."""
    return prefilter_contour(grid, array_name, values, mode="edge").permillage


class ContourPreFilter(Filter):
    """Pipeline form of the pre-filter: :class:`UniformGrid` in,
    :class:`~repro.grid.selection.PointSelection` out.

    Configuration mirrors :class:`~repro.filters.contour.ContourFilter`, so
    :func:`~repro.core.split.split_contour_filter` can derive one from the
    other.
    """

    def __init__(self, array_name: str | None = None, values=(), mode: str = "cell-closure"):
        super().__init__()
        if mode not in SELECTION_MODES:
            raise FilterError(f"unknown selection mode {mode!r}")
        self._array_name = array_name
        self._values: tuple[float, ...] = ()
        self._mode = mode
        if values != () and values is not None:
            self.set_values(values)

    def set_array_name(self, name: str) -> None:
        self._array_name = name
        self.modified()

    @property
    def array_name(self) -> str | None:
        return self._array_name

    def set_values(self, values) -> None:
        self._values = normalize_values(values)
        self.modified()

    @property
    def values(self) -> tuple[float, ...]:
        return self._values

    def set_mode(self, mode: str) -> None:
        if mode not in SELECTION_MODES:
            raise FilterError(f"unknown selection mode {mode!r}")
        self._mode = mode
        self.modified()

    @property
    def mode(self) -> str:
        return self._mode

    def _execute(self, grid) -> PointSelection:
        if not isinstance(grid, STRUCTURED_GRID_TYPES):
            raise FilterError(
                f"ContourPreFilter expects a UniformGrid or RectilinearGrid, "
                f"got {type(grid).__name__}"
            )
        if self._array_name is None:
            raise FilterError("ContourPreFilter has no array name configured")
        if not self._values:
            raise FilterError("ContourPreFilter has no contour values configured")
        return prefilter_contour(grid, self._array_name, self._values, self._mode)
