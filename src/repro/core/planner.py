"""Offload planner: decide baseline vs NDP from cost estimates.

An extension beyond the paper (its Conclusion notes offload benefit is
workload-dependent): given an array's stored/raw sizes, its codec, an
estimated selectivity, and a :class:`~repro.storage.netsim.Testbed`'s
device constants, estimate both paths' load times and pick the winner.

The estimates use exactly the cost structure of the paper's Sec. VI
discussion: the baseline pays SSD + network on the stored bytes plus
client-side decompression; NDP pays SSD on the stored bytes, storage-side
decompression and scan on the raw bytes, and network only on the encoded
selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoding import ids_wire_bytes_per_point
from repro.errors import ReproError
from repro.storage.netsim import Testbed

__all__ = ["OffloadPlanner", "OffloadDecision"]


@dataclass(frozen=True)
class OffloadDecision:
    """The planner's verdict for one load."""

    use_ndp: bool
    baseline_seconds: float
    ndp_seconds: float

    @property
    def predicted_speedup(self) -> float:
        if self.ndp_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.ndp_seconds


class OffloadPlanner:
    """Estimates and compares baseline vs NDP load times.

    Parameters
    ----------
    testbed:
        Device constants (SSD/network/scan rates); a default
        :class:`Testbed` mirrors the paper's hardware.
    bytes_per_selected_point:
        Wire cost per selected point.  Defaults to the ``ids`` encoding's
        actual layout (:func:`~repro.core.encoding.ids_wire_bytes_per_point`:
        float32 value + conservative 4-byte id delta = 8.0); override for
        other value dtypes or measured wire costs.
    """

    def __init__(self, testbed: Testbed | None = None,
                 bytes_per_selected_point: float | None = None):
        self.testbed = testbed if testbed is not None else Testbed()
        if bytes_per_selected_point is None:
            bytes_per_selected_point = ids_wire_bytes_per_point()
        if bytes_per_selected_point <= 0:
            raise ReproError(
                f"bytes_per_selected_point must be > 0, "
                f"got {bytes_per_selected_point}"
            )
        self.bytes_per_selected_point = float(bytes_per_selected_point)

    @staticmethod
    def _check_shards(shards: int) -> int:
        if shards < 1:
            raise ReproError(f"shard count must be >= 1, got {shards}")
        return int(shards)

    # ------------------------------------------------------------------
    def estimate_baseline(self, stored_bytes: int, raw_bytes: int, codec: str) -> float:
        """Seconds for the remote-mount whole-array path."""
        tb = self.testbed
        seconds = stored_bytes / tb.ssd_bps + stored_bytes / tb.net_bps
        decomp = tb.codec_timing(codec).decompress_bps
        if decomp != float("inf"):
            seconds += raw_bytes / decomp
        return seconds

    def estimate_ndp(
        self, stored_bytes: int, raw_bytes: int, codec: str, selectivity: float,
        shards: int = 1,
    ) -> float:
        """Seconds for the offloaded pre-filter path across ``shards``.

        Storage-side work (SSD read, decompression, scan) runs on all
        shards concurrently, so with an even block split the gather
        completes when the slowest — here ``1/shards`` of the data —
        does.  The selection wire cost does **not** divide: all shards'
        replies funnel through the one client link.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise ReproError(f"selectivity must be in [0, 1], got {selectivity}")
        shards = self._check_shards(shards)
        tb = self.testbed
        seconds = stored_bytes / tb.ssd_bps
        decomp = tb.codec_timing(codec).decompress_bps
        if decomp != float("inf"):
            seconds += raw_bytes / decomp
        seconds += raw_bytes / tb.prefilter_bps
        seconds /= shards
        # Selection wire cost: points * per-point wire bytes.
        points = raw_bytes / 4.0  # float32 arrays; upper-bounds others
        wire = selectivity * points * self.bytes_per_selected_point
        seconds += wire / tb.net_bps
        return seconds

    def decide(
        self, stored_bytes: int, raw_bytes: int, codec: str, selectivity: float,
        shards: int = 1,
    ) -> OffloadDecision:
        """Compare both paths and return the decision."""
        baseline = self.estimate_baseline(stored_bytes, raw_bytes, codec)
        ndp = self.estimate_ndp(
            stored_bytes, raw_bytes, codec, selectivity, shards=shards
        )
        return OffloadDecision(ndp < baseline, baseline, ndp)


class AdaptiveContourClient:
    """Probe once, then route every load through the cheaper path.

    The planner needs an (array, values)-specific selectivity to decide
    between the baseline and NDP; measuring it costs a storage-side scan.
    This client pays that probe once per configuration on a representative
    object, caches the decision, and then serves every contour either:

    * **NDP** — via :func:`~repro.core.ndp_client.ndp_contour`, or
    * **baseline** — reading the array through the remote mount and
      contouring locally,

    whichever the model predicts is faster.  Movie workloads (many
    timesteps, fixed values) amortize the probe to nothing.

    Parameters
    ----------
    client:
        RPC client connected to the NDP server.
    remote_fs:
        A client-side mount of the same store (the baseline path).
    testbed:
        Optional cost model for the planner's estimates.
    """

    def __init__(self, client, remote_fs, testbed: Testbed | None = None):
        self._client = client
        self._remote_fs = remote_fs
        self.planner = OffloadPlanner(testbed)
        self._decisions: dict = {}

    # ------------------------------------------------------------------
    def decision_for(self, key: str, array: str, values,
                     mode: str = "cell-closure") -> OffloadDecision:
        """The cached (or freshly probed) decision for this configuration."""
        from repro.filters.contour import normalize_values

        cache_key = (array, normalize_values(values), mode)
        if cache_key not in self._decisions:
            probe = self._client.call(
                "probe_selectivity", key, array, list(values), mode
            )
            self._decisions[cache_key] = self.planner.decide(
                probe["stored_bytes"],
                probe["raw_bytes"],
                probe["codec"],
                probe["selectivity"],
            )
        return self._decisions[cache_key]

    def contour(self, key: str, array: str, values,
                mode: str = "cell-closure"):
        """Contour ``key``'s array via whichever path the planner chose.

        Returns ``(polydata, info)`` where ``info`` records the route.
        """
        from repro.core.ndp_client import ndp_contour
        from repro.filters.contour import contour_grid
        from repro.io.vgf import read_vgf

        decision = self.decision_for(key, array, values, mode)
        if decision.use_ndp:
            polydata, stats = ndp_contour(self._client, key, array, values, mode)
            info = {"route": "ndp", "decision": decision, "stats": stats}
        else:
            with self._remote_fs.open(key) as fh:
                grid = read_vgf(fh, [array])
            polydata = contour_grid(grid, array, values)
            info = {"route": "baseline", "decision": decision, "stats": None}
        return polydata, info
