"""In-situ precomputed selections: pay the pre-filter at write time.

The paper positions NDP against in-situ analysis (PreDatA, SENSEI, ...),
which "perform[s] these tasks during simulation, bypassing the need for
data storage" (Sec. VIII).  This module is the hybrid between the two:
run the pre-filter **once, at simulation-output time**, and store the
encoded selection *next to* the array.  An analysis client then fetches
the tiny selection object directly — no storage-side array read, no
decompression, no scan — turning the NDP load into a pure
selection-sized transfer.

The trade, quantified by ``benchmarks/test_ext_precomputed.py``: the
contour values must be known when the data is written (the common case
for movie rendering and threshold-style monitoring), and each (array,
values, mode) combination costs one small stored object.

Selections are stored under a deterministic sibling key::

    <data key>.sel/<array>/<mode>/v<v1>_<v2>...

so both the writer and any reader can derive it without a catalog.
"""

from __future__ import annotations

from repro.core.encoding import decode_selection, encode_selection, wire_size
from repro.core.postfilter import postfilter_contour
from repro.core.prefilter import prefilter_contour
from repro.errors import NoSuchObjectError
from repro.filters.contour import normalize_values
from repro.grid.polydata import PolyData
from repro.io.vgf import read_vgf
from repro.rpc.msgpack import pack, unpack

__all__ = [
    "selection_key",
    "precompute_selections",
    "load_precomputed_selection",
    "ndp_contour_precomputed",
]


def selection_key(key: str, array: str, values, mode: str = "cell-closure") -> str:
    """The store key of a precomputed selection for these parameters."""
    vals = normalize_values(values)
    sig = "_".join(f"{v:g}" for v in vals)
    return f"{key}.sel/{array}/{mode}/v{sig}"


def precompute_selections(
    fs,
    key: str,
    arrays: list[str],
    values,
    mode: str = "cell-closure",
    wire_codec: str = "lz4",
) -> list[tuple[str, int]]:
    """Pre-filter stored data and persist the encoded selections.

    Run this where the data lives (the simulation node or the storage
    node) right after the timestep is written.

    Returns ``[(selection_key, stored_bytes), ...]``.
    """
    with fs.open(key) as fh:
        grid = read_vgf(fh, list(arrays))
    written = []
    for array in arrays:
        selection = prefilter_contour(grid, array, values, mode=mode)
        encoded = encode_selection(selection, payload_codec=wire_codec)
        blob = pack(encoded)
        sel_key = selection_key(key, array, values, mode)
        fs.write_object(sel_key, blob)
        written.append((sel_key, len(blob)))
    return written


def load_precomputed_selection(fs, key: str, array: str, values,
                               mode: str = "cell-closure"):
    """Read a precomputed selection back from the store.

    Raises
    ------
    NoSuchObjectError
        If :func:`precompute_selections` was never run for these
        parameters.
    """
    sel_key = selection_key(key, array, values, mode)
    blob = fs.read_object(sel_key)
    return decode_selection(unpack(blob))


def ndp_contour_precomputed(
    fs, key: str, array: str, values, mode: str = "cell-closure"
) -> tuple[PolyData, dict]:
    """Contour from a precomputed selection; falls back to nothing.

    ``fs`` may be any mount of the store — including a *remote* one: the
    whole point is that only the selection object crosses it.

    Returns ``(polydata, stats)``; raises
    :class:`~repro.errors.NoSuchObjectError` when no precomputed selection
    exists (callers fall back to the on-demand NDP path).
    """
    sel_key = selection_key(key, array, values, mode)
    blob = fs.read_object(sel_key)
    encoded = unpack(blob)
    selection = decode_selection(encoded)
    stats = {
        "stored_bytes": len(blob),
        "raw_bytes": selection.total_points * selection.values.dtype.itemsize,
        "selected_points": int(selection.count),
        "total_points": int(selection.total_points),
        "wire_bytes": wire_size(encoded),
        "precomputed": True,
    }
    return postfilter_contour(selection, values), stats
