"""Command-line interface: generate datasets, serve, inspect, contour.

Usage (also via ``python -m repro``)::

    python -m repro generate asteroid --dim 64 --store /data/impact --codec lz4
    python -m repro info --store /data/impact
    python -m repro serve --store /data/impact --port 9090
    python -m repro contour --connect 127.0.0.1:9090 --key asteroid/ts00000.vgf \\
        --array v02 --values 0.1 --render frame.ppm
    python -m repro contour --store /data/impact --key asteroid/ts00000.vgf \\
        --array v02 --values 0.1,0.5          # local, no server

The CLI wires together the same public APIs the examples use; it exists
so a downstream user can drive the system without writing Python.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.ndp_client import FallbackPolicy, ndp_contour
from repro.core.ndp_server import NDPServer
from repro.datasets.asteroid import AsteroidImpactDataset, AsteroidParams
from repro.datasets.nyx import NyxDataset, NyxParams
from repro.errors import ReproError, RPCTransportError
from repro.io.ppm import write_ppm
from repro.io.vgf import read_vgf_info, write_vgf
from repro.obs.export import prometheus_text, write_chrome_trace, write_jsonl
from repro.obs.flightrec import FlightRecorder, install_signal_dump
from repro.obs.metrics import Registry, merge_snapshots
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import SLO, SLOEngine
from repro.obs.trace import Tracer
from repro.rpc.client import RPCClient
from repro.rpc.pool import parse_address
from repro.rpc.resilience import CircuitBreaker, ResilientTransport, RetryPolicy
from repro.rpc.transport import TCPTransport
from repro.storage.metrics import ResilienceStats
from repro.storage.object_store import DirectoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

__all__ = ["main", "build_parser"]

DEFAULT_BUCKET = "sim"


def _open_fs(store_dir: str, bucket: str, create: bool = False) -> S3FileSystem:
    store = ObjectStore(DirectoryBackend(store_dir))
    if create:
        store.create_bucket(bucket)
    return S3FileSystem(store, bucket)


def _write_trace(tracer: Tracer, path: str) -> None:
    """Export a tracer's spans: ``.jsonl`` writes a span log, anything
    else the Chrome trace-event JSON Perfetto loads."""
    spans = tracer.finished()
    if path.endswith(".jsonl"):
        n = write_jsonl(spans, path)
        print(f"wrote {n} spans to {path}")
    else:
        n = write_chrome_trace(spans, path)
        print(f"wrote {n} trace events to {path} (load in Perfetto / "
              f"chrome://tracing)")


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_generate(args) -> int:
    fs = _open_fs(args.store, args.bucket, create=True)
    dims = (args.dim, args.dim, args.dim)
    if args.dataset == "asteroid":
        dataset = AsteroidImpactDataset(AsteroidParams(dims=dims))
        arrays = args.arrays.split(",") if args.arrays else ["v02", "v03"]
        for step in dataset.timesteps:
            grid = dataset.generate_arrays(step, arrays)
            key = f"asteroid/ts{step:05d}.vgf"
            fs.write_object(key, write_vgf(grid, codec=args.codec,
                                           meta={"timestep": step}))
            print(f"wrote {key}")
    else:
        grid = NyxDataset(NyxParams(dims=dims)).generate()
        if args.arrays:
            keep = args.arrays.split(",")
            from repro.grid.uniform import UniformGrid

            sub = UniformGrid(grid.dims, grid.origin, grid.spacing)
            for name in keep:
                sub.point_data.add(grid.point_data.get(name))
            grid = sub
        fs.write_object("nyx/snapshot.vgf", write_vgf(grid, codec=args.codec))
        print("wrote nyx/snapshot.vgf")
    return 0


def cmd_info(args) -> int:
    fs = _open_fs(args.store, args.bucket)
    keys = fs.listdir(args.prefix)
    if not keys:
        print("no objects found")
        return 1
    shown = 0
    for key in keys:
        try:
            with fs.open(key) as fh:
                info = read_vgf_info(fh)
        except Exception:
            continue  # selection blobs etc. share the bucket
        shown += 1
        arrays = ", ".join(
            f"{a.name}[{a.codec},{a.stored_bytes}B]" for a in info.arrays
        )
        print(f"{key}: dims={info.dims} meta={info.meta}")
        print(f"    {arrays}")
        if args.stats:
            server = NDPServer(fs)
            for a in info.arrays:
                st = server.array_statistics(key, a.name, bins=8)
                print(
                    f"    {a.name}: min={st['min']:.4g} max={st['max']:.4g} "
                    f"mean={st['mean']:.4g} std={st['std']:.4g}"
                )
    return 0 if shown else 1


def cmd_serve(args) -> int:
    import signal
    import threading

    fs = _open_fs(args.store, args.bucket)
    tracer = Tracer(process="server") if args.trace_out else None
    recorder = (
        FlightRecorder(dump_dir=args.dump_dir or None, process="server")
        if args.flight_recorder == "on" else None
    )
    profiler = (
        SamplingProfiler(hz=args.profile_hz) if args.profile_hz > 0 else None
    )
    slo_engine = SLOEngine(
        slo=SLO(latency=args.slo_latency, objective=args.slo_objective)
    )
    server = NDPServer(
        fs,
        cache_bytes=args.cache_bytes,
        selection_cache_bytes=args.selection_cache,
        tracer=tracer,
        max_inflight=args.max_inflight,
        max_pending=args.max_pending,
        verify_checksums=args.verify_checksums == "on",
        flight_recorder=recorder,
        slo=slo_engine,
        profiler=profiler,
        slo_shed=args.slo_shed,
    )
    if recorder is not None:
        install_signal_dump(recorder)  # SIGUSR2 -> dump, main thread only
    max_conns = args.max_connections if args.max_connections > 0 else None
    if args.serving_core == "async":
        weights = _parse_tenant_weights(args.tenant_weights)
        listener = server.serve_async_tcp(
            host=args.host, port=args.port, max_connections=max_conns,
            workers=args.workers, tenant_weights=weights,
            tenant_inflight=args.tenant_inflight,
            tenant_pending=args.tenant_pending,
        )
    else:
        listener = server.serve_tcp(
            host=args.host, port=args.port, max_connections=max_conns,
        )
    caches = (
        f"array_cache={args.cache_bytes // 2**20} MiB"
        if args.cache_bytes > 0 else "array_cache=off",
        f"selection_cache={args.selection_cache // 2**20} MiB"
        if args.selection_cache > 0 else "selection_cache=off",
    )
    admission = (
        f"max_inflight={args.max_inflight}" if args.max_inflight > 0
        else "admission=unlimited"
    )
    core = (
        f"core=async workers={args.workers}" if args.serving_core == "async"
        else "core=threaded"
    )
    obs = (
        "flightrec=" + (
            (f"on->{args.dump_dir}" if args.dump_dir else "on")
            if recorder is not None else "off"
        ),
        f"profiler={args.profile_hz:g}Hz" if profiler is not None
        else "profiler=off",
        f"slo={args.slo_objective:.0%}@{args.slo_latency * 1e3:.0f}ms"
        + ("+shed" if args.slo_shed else ""),
    )
    print(f"NDP server on {listener.host}:{listener.port} "
          f"(store={args.store}, bucket={args.bucket}, {core}, "
          f"{caches[0]}, {caches[1]}, {admission}, "
          f"checksums={args.verify_checksums}, "
          f"{obs[0]}, {obs[1]}, {obs[2]}"
          f"{', tracing on' if tracer else ''})")

    stop = threading.Event()
    # Graceful drain on SIGTERM/SIGINT.  Signal handlers can only be
    # installed from the main thread; when driven from a worker thread
    # (tests, embedding) the --timeout path still provides shutdown.
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, _frame):
            print(f"\nsignal {signum}: draining (in-flight requests get up "
                  f"to {args.drain_timeout:.1f}s)")
            stop.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    clean = True
    try:
        stop.wait(args.timeout if args.timeout > 0 else None)
    except KeyboardInterrupt:
        pass
    finally:
        clean = listener.stop(drain_timeout=args.drain_timeout)
        shed = server.admission.info()["shed"]
        print(f"stopped ({'clean' if clean else 'forced'}; "
              f"{server.admission.info()['admitted']} requests served, "
              f"{shed} shed)")
        if tracer is not None:
            _write_trace(tracer, args.trace_out)
    return 0 if clean else 1


def _parse_tenant_weights(spec: str) -> dict | None:
    """Parse ``"gold=3,batch=1"`` into ``{"gold": 3.0, "batch": 1.0}``."""
    if not spec:
        return None
    weights = {}
    for part in spec.split(","):
        name, sep, value = part.partition("=")
        if not sep or not name.strip():
            raise SystemExit(
                f"error: bad --tenant-weights entry {part!r} (want name=weight)"
            )
        try:
            weights[name.strip()] = float(value)
        except ValueError:
            raise SystemExit(
                f"error: bad --tenant-weights value {value!r} (want a number)"
            ) from None
    return weights


def cmd_loadgen(args) -> int:
    """Open-loop load generator against a running server."""
    import json

    from repro.bench.loadgen import run_load

    try:
        host, port = parse_address(args.connect)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    params = ()
    if args.params:
        try:
            params = tuple(json.loads(args.params))
        except (ValueError, TypeError):
            print(f"error: --params must be a JSON array, got {args.params!r}",
                  file=sys.stderr)
            return 2
    report = run_load(
        host, port,
        connections=args.connections, rate=args.rate,
        duration=args.duration, method=args.method, params=params,
        core=args.core, tenant=args.tenant or None,
        timeout=args.call_timeout, seed=args.seed,
    )
    print(report.summary())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    # Exit status mirrors the run's health: errors are failures, sheds
    # are backpressure working as designed.
    return 0 if report.errors == 0 else 1


def cmd_verify(args) -> int:
    """Check every stored VGF's header and per-array checksums.

    Exit status 0 means every object verified clean; 1 means at least one
    corrupt object (or nothing to check).  Objects written before
    checksums existed are reported unverifiable but don't fail the run —
    they are not *known* bad, merely unprovable.
    """
    from repro.io.vgf import verify_vgf

    fs = _open_fs(args.store, args.bucket)
    keys = [k for k in fs.listdir(args.prefix) if k.endswith(".vgf")]
    if not keys:
        print("no .vgf objects found")
        return 1
    corrupt = 0
    unverifiable = 0
    for key in keys:
        problems = verify_vgf(fs.read_object(key))
        if not problems:
            print(f"{key}: OK")
        elif all("unverifiable" in p for p in problems):
            unverifiable += 1
            print(f"{key}: UNVERIFIABLE (written without checksums)")
        else:
            corrupt += 1
            print(f"{key}: CORRUPT")
            for problem in problems:
                print(f"    {problem}")
    print(f"checked {len(keys)} object(s): "
          f"{len(keys) - corrupt - unverifiable} ok, {corrupt} corrupt, "
          f"{unverifiable} unverifiable")
    return 1 if corrupt else 0


def cmd_shard(args) -> int:
    """Partition a stored VGF into block objects + a signed manifest."""
    from repro.cluster import shard_object

    try:
        blocks = tuple(int(b) for b in args.blocks.lower().split("x"))
        if len(blocks) != 3 or any(b < 1 for b in blocks):
            raise ValueError(blocks)
    except ValueError:
        print(f"error: --blocks must be AxBxC (e.g. 2x2x2), "
              f"got {args.blocks!r}", file=sys.stderr)
        return 2
    fs = _open_fs(args.store, args.bucket)
    manifest = shard_object(
        fs, args.key, blocks=blocks,
        shards=args.shards if args.shards > 0 else None,
        codec=args.codec,
        sign_key=args.sign_key.encode() if args.sign_key else None,
        replicas=args.replicas,
    )
    for bo in manifest.block_objects:
        chain = ("" if len(bo.replicas) == 1
                 else f", replicas {list(bo.replicas)}")
        print(f"wrote {bo.key} (block {bo.spec.index} "
              f"{bo.spec.lo}..{bo.spec.hi} -> shard {bo.shard}{chain})")
    print(f"wrote {manifest.manifest_key} "
          f"({len(manifest.block_objects)} blocks, {manifest.shards} "
          f"shard(s), R={manifest.replication_factor})")
    return 0


def cmd_serve_cluster(args) -> int:
    """Run NDP servers for a manifest's shards over one shared store.

    Default mode runs every shard in this process.  ``--shard N`` runs
    exactly one shard (on ``--port``, default ephemeral) so each shard
    can live in its own OS process — the deployment the failover tests
    kill shards out of.  Either way every server advertises the *live*
    manifest generation through a :class:`ManifestWatcher`, so a
    ``repro rebalance --apply`` shows up in reply ``map_version`` tokens
    without a restart.
    """
    import threading

    from repro.cluster import ManifestWatcher

    fs = _open_fs(args.store, args.bucket)
    watcher = ManifestWatcher(
        fs, args.manifest,
        sign_key=args.sign_key.encode() if args.sign_key else None,
        min_interval=args.map_poll,
    )
    manifest = watcher.manifest()
    if args.shard >= 0:
        if args.shard >= manifest.shards:
            print(f"error: --shard {args.shard} out of range "
                  f"(manifest names {manifest.shards} shard(s))",
                  file=sys.stderr)
            return 2
        shard_ids = [args.shard]
    else:
        shard_ids = list(range(manifest.shards))
    servers = [
        NDPServer(fs, map_version=watcher.version) for _ in shard_ids
    ]
    listeners = [
        s.serve_tcp(host=args.host,
                    port=args.port if len(shard_ids) == 1 else 0)
        for s in servers
    ]
    endpoints = [f"{ln.host}:{ln.port}" for ln in listeners]
    for shard, addr in zip(shard_ids, endpoints):
        blocks = len(manifest.blocks_served_by(shard))
        print(f"shard {shard}: {addr} ({blocks} block(s) incl. replicas)",
              flush=True)
    if args.endpoints_out:
        with open(args.endpoints_out, "w") as fh:
            fh.write("\n".join(endpoints) + "\n")
        print(f"wrote {args.endpoints_out}")
    print(f"{len(shard_ids)} shard(s) of {manifest.shards} for "
          f"{args.manifest} @ map_version {manifest.map_version} "
          f"(connect with: repro contour --cluster {args.manifest} "
          f"--connect {','.join(endpoints)})", flush=True)
    stop = threading.Event()
    try:
        stop.wait(args.timeout if args.timeout > 0 else None)
    except KeyboardInterrupt:
        pass
    finally:
        # Materialize first: short-circuiting would leave later
        # listeners running after one reports a forced stop.
        clean = all([
            ln.stop(drain_timeout=args.drain_timeout) for ln in listeners
        ])
        print(f"stopped {len(listeners)} shard(s) "
              f"({'clean' if clean else 'forced'})")
    return 0 if clean else 1


def _resilience_from_args(args) -> tuple[RetryPolicy, CircuitBreaker | None, ResilienceStats]:
    retry = RetryPolicy(
        max_attempts=max(1, args.retries),
        base_delay=args.backoff,
        deadline=args.deadline if args.deadline > 0 else None,
    )
    breaker = (
        CircuitBreaker(
            failure_threshold=args.breaker_threshold,
            reset_timeout=args.breaker_reset,
        )
        if args.breaker_threshold > 0
        else None
    )
    return retry, breaker, ResilienceStats()


def cmd_contour(args) -> int:
    try:
        values = [float(v) for v in args.values.split(",")]
    except ValueError:
        print(f"error: --values must be comma-separated numbers, "
              f"got {args.values!r}", file=sys.stderr)
        return 2
    if bool(args.cluster) == bool(args.key):
        print("error: provide exactly one of --key (monolithic) or "
              "--cluster MANIFEST_KEY (sharded)", file=sys.stderr)
        return 2
    retry, breaker, rstats = _resilience_from_args(args)
    tracer = Tracer(process="client") if args.trace_out else None
    if args.cluster:
        return _cluster_contour(args, values, retry, breaker, rstats, tracer)
    fallback = None
    if args.fallback:
        if not args.store:
            print("error: --fallback needs --store DIR to read from",
                  file=sys.stderr)
            return 2
        fallback = FallbackPolicy(
            _open_fs(args.store, args.bucket), stats=rstats, tracer=tracer
        )
    client = None
    close = lambda: None  # noqa: E731 - replaced when a client is built
    try:
        if args.connect:
            host, port = parse_address(args.connect)
            try:
                transport = TCPTransport(host, port)
            except RPCTransportError as exc:
                if fallback is None:
                    raise
                # Server unreachable before the first frame: degrade now.
                polydata, stats = fallback.contour(
                    args.key, args.array, values, reason=exc
                )
                rc = _report_contour(args, polydata, stats, rstats)
                if tracer is not None:
                    _write_trace(tracer, args.trace_out)
                return rc
            client = RPCClient(
                ResilientTransport(
                    transport, retry=retry, breaker=breaker, stats=rstats,
                    tracer=tracer,
                ),
                tracer=tracer,
            )
            close = client.close
        else:
            if not args.store:
                print("error: provide --connect host:port or --store DIR",
                      file=sys.stderr)
                return 2
            fs = _open_fs(args.store, args.bucket)
            from repro.rpc.transport import InProcessTransport

            # The in-process server gets its own tracer: its spans travel
            # back through the reply envelope exactly as over TCP, so the
            # exported trace has the same two-process shape either way.
            server = NDPServer(
                fs, tracer=Tracer(process="server") if tracer else None
            )
            client = RPCClient(
                ResilientTransport(
                    InProcessTransport(server.rpc.dispatch),
                    retry=retry, breaker=breaker, stats=rstats, tracer=tracer,
                ),
                tracer=tracer,
            )
        polydata, stats = ndp_contour(
            client, args.key, args.array, values, fallback=fallback
        )
    finally:
        close()
    rc = _report_contour(args, polydata, stats, rstats)
    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    return rc


def _cluster_contour(args, values, retry, breaker, rstats, tracer) -> int:
    """Scatter–gather contour against the shards of a manifest."""
    from repro.cluster import ClusterClient, load_manifest
    from repro.rpc.pool import EndpointPool

    if not args.store:
        print("error: --cluster needs --store DIR (to read the manifest"
              + (")" if args.connect else " and run in-process shards)"),
              file=sys.stderr)
        return 2
    fs = _open_fs(args.store, args.bucket)
    manifest = load_manifest(fs, args.cluster)
    breaker_factory = (
        (lambda: CircuitBreaker(breaker.failure_threshold,
                                breaker.reset_timeout))
        if breaker is not None else None
    )
    if args.connect:
        addresses = [a for a in args.connect.split(",") if a]
        if len(addresses) < manifest.shards:
            print(f"error: manifest names {manifest.shards} shard(s) but "
                  f"--connect lists only {len(addresses)} address(es)",
                  file=sys.stderr)
            return 2
        pool = EndpointPool.connect_tcp(
            addresses, retry=retry, breaker_factory=breaker_factory,
            stats=rstats, tracer=tracer,
        )
    else:
        from repro.rpc.transport import InProcessTransport

        servers = [
            NDPServer(fs, map_version=manifest.map_version)
            for _ in range(manifest.shards)
        ]
        pool = EndpointPool(
            [InProcessTransport(s.rpc.dispatch) for s in servers],
            retry=retry, breaker_factory=breaker_factory,
            stats=rstats, tracer=tracer,
        )
    with pool:
        cluster = ClusterClient(
            pool, manifest, fallback_fs=fs if args.fallback else None,
            tracer=tracer, manifest_fs=fs,
            hedge=not args.no_hedge,
            hedge_quantile=args.hedge_quantile,
            hedge_floor=args.hedge_floor,
            hedge_cap=args.hedge_cap,
        )
        polydata, stats = cluster.contour(args.array, values)
    rc = _report_contour(args, polydata, stats, rstats)
    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    return rc


def _report_contour(args, polydata, stats, rstats: ResilienceStats) -> int:
    print(
        f"contour: {polydata.triangles().shape[0]} triangles, "
        f"{polydata.num_points} points"
    )
    if stats and stats.get("path") == "cluster":
        line = (
            f"cluster: {stats['shards_queried']}/{stats['shards']} shards, "
            f"{stats['blocks']} block(s); transferred "
            f"{stats['wire_bytes'] / 1e3:.1f} kB "
            f"({stats['selected_points']} of {stats['total_points']} points)"
        )
        if stats.get("fallback_blocks"):
            line += (f"; {stats['fallback_blocks']} block(s) via baseline "
                     f"fallback ({stats.get('last_fallback_reason')})")
        print(line)
        if stats.get("replicas", 1) > 1 or stats.get("hedges") \
                or stats.get("failovers"):
            rep = (
                f"replication: R={stats.get('replicas', 1)} "
                f"map_version={stats.get('map_version', 1)}; "
                f"{stats.get('hedges', 0)} hedge(s) "
                f"({stats.get('hedge_wins', 0)} won), "
                f"{stats.get('failovers', 0)} failover(s), "
                f"{stats.get('failover_blocks', 0)} block(s) served by a "
                f"non-primary replica"
            )
            if stats.get("stale_map"):
                refreshed = ("refreshed" if stats.get("map_refreshed")
                             else "refresh unavailable")
                rep += f"; stale shard map detected ({refreshed})"
            print(rep)
    elif stats and stats.get("path") == "fallback":
        print(
            f"path: baseline fallback ({stats.get('fallback_reason')}); "
            f"read {stats['stored_bytes'] / 1e3:.1f} kB stored"
        )
    elif stats:
        print(
            f"transferred {stats['wire_bytes'] / 1e3:.1f} kB of "
            f"{stats['raw_bytes'] / 1e6:.2f} MB raw "
            f"({stats['selected_points']} of {stats['total_points']} points)"
        )
    events = rstats.as_dict()
    if events.get("retries") or events.get("breaker_trips") or events.get("fallbacks"):
        print(
            f"resilience: {events.get('retries', 0)} retries, "
            f"{events.get('breaker_trips', 0)} breaker trips, "
            f"{events.get('fallbacks', 0)} fallbacks"
        )
    if args.render:
        from repro.render.scene import Scene

        scene = Scene()
        scene.add_mesh(polydata, color=(0.3, 0.75, 0.9))
        write_ppm(args.render, scene.render(args.width, args.height))
        print(f"wrote {args.render}")
    return 0


def _split_addresses(spec: str) -> list[tuple[str, str, int]] | None:
    """Parse ``"a:1,b:2"`` into ``[(label, host, port), ...]`` or None."""
    out = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            host, port = parse_address(part)
        except ReproError as exc:
            print(f"error: bad address: {exc}", file=sys.stderr)
            return None
        out.append((part, host, port))
    if not out:
        print("error: bad address spec: --connect lists no addresses",
              file=sys.stderr)
        return None
    return out


def _call_addresses(addresses, args, method: str, rstats, params=()):
    """Call one RPC method on every address; never raises.

    Returns ``(results, failures)`` where results are ``(label, reply)``
    and failures ``(label, exc)``.  Each address gets its own transport
    and breaker (a dead shard must not open the breaker for the rest);
    ``rstats`` is shared so the probe reports one resilience ledger.
    """
    results, failures = [], []
    for label, host, port in addresses:
        retry, breaker, _ = _resilience_from_args(args)
        try:
            transport = TCPTransport(host, port)
        except RPCTransportError as exc:
            failures.append((label, exc))
            continue
        client = RPCClient(
            ResilientTransport(transport, retry=retry, breaker=breaker,
                               stats=rstats)
        )
        try:
            results.append((label, client.call(method, *params)))
        except RPCTransportError as exc:
            failures.append((label, exc))
        finally:
            client.close()
    return results, failures


def cmd_health(args) -> int:
    addresses = _split_addresses(args.connect)
    if addresses is None:
        return 2
    rstats = ResilienceStats()
    results, failures = _call_addresses(addresses, args, "health", rstats)
    if len(addresses) > 1:
        return _health_table(addresses, results, failures)
    for _, exc in failures:
        print(f"unreachable: {exc}")
        return 1
    report = results[0][1]
    if report.get("kind") == "edge":
        print(
            f"status: {report['status']} (edge, "
            f"upstream_reachable={report.get('upstream_reachable')}, "
            f"requests_served={report.get('requests_served', 0)})"
        )
        edge = report.get("edge") or {}
        print(
            f"edge: hit_rate {float(edge.get('hit_rate') or 0.0):.0%}, "
            f"revalidations {int(edge.get('revalidations', 0))}, "
            f"invalidations {int(edge.get('invalidations', 0))}, "
            f"upstream_errors {int(edge.get('upstream_errors', 0))}"
        )
        if report.get("upstream_error"):
            print(f"upstream_error: {report['upstream_error']}")
        return 0 if report["status"] == "ok" else 1
    print(
        f"status: {report['status']} "
        f"(store_reachable={report['store_reachable']}, "
        f"requests_served={report['requests_served']})"
    )
    admission = report.get("admission") or {}
    if admission:
        limit = admission.get("max_inflight", 0) or "unlimited"
        print(
            f"admission: inflight={admission.get('inflight', 0)}/{limit}, "
            f"pending={admission.get('pending', 0)}, "
            f"shed={admission.get('shed', 0)}, "
            f"expired={admission.get('expired', 0)}"
        )
    integrity = int(report.get("integrity_failures", 0))
    if integrity:
        print(f"integrity_failures: {integrity} (checksum mismatches on "
              f"at-rest reads — run `repro verify` against the store)")
    if "map_version" in report or report.get("hedged_requests") \
            or report.get("failover_requests"):
        line = (f"replication: {int(report.get('hedged_requests', 0))} "
                f"hedged, {int(report.get('failover_requests', 0))} "
                f"failover request(s)")
        if "map_version" in report:
            line += f", serving map_version {report['map_version']}"
        print(line)
    for label in ("array_cache", "selection_cache"):
        cache = report.get(label)
        if not cache:
            continue
        if not cache.get("enabled"):
            print(f"{label}: off")
            continue
        print(
            f"{label}: {cache['entries']} entries, "
            f"{cache['current_bytes'] / 2**20:.1f}/"
            f"{cache['max_bytes'] / 2**20:.0f} MiB, "
            f"{cache['hits']} hits / {cache['misses']} misses / "
            f"{cache['coalesced']} coalesced"
        )
    return 0 if report["status"] == "ok" else 1


def _health_table(addresses, results, failures) -> int:
    """One merged table for a comma-separated address list."""
    print(f"{'ADDRESS':<22}{'STATUS':<13}{'SERVED':>8}{'INFL':>6}"
          f"{'SHED':>7}{'INTEG':>7}  BURNING")
    reports = dict(results)
    ok = 0
    for label, _, _ in addresses:
        report = reports.get(label)
        if report is None:
            print(f"{label:<22}{'unreachable':<13}")
            continue
        admission = report.get("admission") or {}
        slo = report.get("slo") or {}
        burning = ",".join(slo.get("burning") or []) or "-"
        print(
            f"{label:<22}{report['status']:<13}"
            f"{int(report.get('requests_served', 0)):>8}"
            f"{int(admission.get('inflight', 0)):>6}"
            f"{int(admission.get('shed', 0)):>7}"
            f"{int(report.get('integrity_failures', 0)):>7}  {burning}"
        )
        if report["status"] == "ok":
            ok += 1
    print(f"{ok}/{len(addresses)} healthy")
    return 0 if ok == len(addresses) else 1


def _hist_summary(hist: dict) -> str:
    """Compact one-line view of a snapshot histogram dict."""
    count = int(hist.get("count", 0))
    if count == 0:
        return "no observations"
    mean = hist.get("sum", 0.0) / count

    def quantile(q: float) -> str:
        rank = q * count
        seen = 0
        for bucket in hist.get("buckets", []):
            seen += int(bucket.get("count", 0))
            if seen >= rank:
                le = bucket.get("le")
                return "+Inf" if le == "+Inf" else f"{float(le) * 1e3:.3g}ms"
        return "+Inf"

    return (
        f"count={count} mean={mean * 1e3:.3g}ms "
        f"p50<={quantile(0.5)} p90<={quantile(0.9)} p99<={quantile(0.99)}"
    )


def _print_cache_line(label: str, cache: dict) -> None:
    if not cache or not cache.get("enabled", True):
        print(f"{label}: off")
        return
    hits = int(cache.get("hits", 0))
    misses = int(cache.get("misses", 0))
    coalesced = int(cache.get("coalesced", 0))
    served = hits + coalesced
    total = served + misses
    rate = f"{100.0 * served / total:.1f}%" if total else "n/a"
    line = f"{label}: hit_rate {rate} ({hits} hits / {misses} misses / " \
           f"{coalesced} coalesced)"
    if "entries" in cache:
        line += (f", {cache['entries']} entries, "
                 f"{cache.get('current_bytes', 0) / 2**20:.1f}/"
                 f"{cache.get('max_bytes', 0) / 2**20:.0f} MiB")
    print(line)


def cmd_serve_edge(args) -> int:
    """Run an edge cache server fronting one or more upstream NDP servers.

    Clients point ``repro contour --connect`` at the edge exactly as they
    would at a storage-side server; warm requests are served from the
    edge's version-token-coherent caches without crossing the (possibly
    WAN) upstream links.  ``--wan-profile`` throttles the *upstream* dial
    through a named latency/bandwidth model — handy for demonstrating the
    edge win on one machine.
    """
    import signal
    import threading

    from repro.edge import EdgeCacheServer
    from repro.rpc.transport import ThrottledTransport
    from repro.storage.netsim import WAN_PROFILES

    addresses = _split_addresses(args.upstream)
    if addresses is None:
        return 2
    transports = []
    for _label, host, port in addresses:
        transport = TCPTransport(host, port, timeout=args.upstream_timeout,
                                 lazy=True)
        if args.wan_profile:
            transport = ThrottledTransport(transport,
                                           WAN_PROFILES[args.wan_profile])
        # propagate_deadline=False: forwarded frames must stay
        # byte-identical; the client's own ctx already carries a deadline
        # when it set one.
        transports.append(ResilientTransport(
            transport,
            retry=RetryPolicy(max_attempts=2),
            breaker=CircuitBreaker(),
            propagate_deadline=False,
        ))
    tracer = Tracer(process="edge") if args.trace_out else None
    server = EdgeCacheServer(
        transports,
        cache_bytes=args.cache_bytes,
        reply_cache_bytes=args.reply_cache,
        coherence=args.coherence,
        serve_stale=args.serve_stale,
        promote_after=args.promote_after,
        verify_checksums=args.verify_checksums == "on",
        tracer=tracer,
        watch_interval=args.watch_interval if args.watch_interval > 0
        else None,
    )
    max_conns = args.max_connections if args.max_connections > 0 else None
    listener = server.serve_tcp(host=args.host, port=args.port,
                                max_connections=max_conns)
    upstream_desc = ",".join(label for label, _h, _p in addresses)
    print(f"edge cache on {listener.host}:{listener.port} "
          f"(upstream={upstream_desc}"
          f"{', wan=' + args.wan_profile if args.wan_profile else ''}, "
          f"coherence={args.coherence}, "
          f"block_cache={args.cache_bytes // 2**20} MiB, "
          f"reply_cache={args.reply_cache // 2**20} MiB, "
          f"serve_stale={'on' if args.serve_stale else 'off'}"
          f"{', tracing on' if tracer else ''})", flush=True)

    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, _frame):
            print(f"\nsignal {signum}: stopping edge")
            stop.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    try:
        stop.wait(args.timeout if args.timeout > 0 else None)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        info = server.server_stats()
        print(f"stopped edge ({info['requests']} requests, "
              f"hit_rate {info['hit_rate']:.0%}, "
              f"{info['forwards']} forwards, "
              f"{info['upstream_errors']} upstream errors)")
        if tracer is not None:
            _write_trace(tracer, args.trace_out)
    return 0


def cmd_stats(args) -> int:
    """Fetch and pretty-print a server's unified registry snapshot.

    ``--connect`` accepts a comma-separated address list; snapshots from
    every reachable shard are merged (counters summed, histograms merged
    bucket-wise) into one table — the static counterpart of ``repro top``.
    """
    addresses = _split_addresses(args.connect)
    if addresses is None:
        return 2
    rstats = ResilienceStats()
    results, failures = _call_addresses(addresses, args, "stats", rstats)
    for label, exc in failures:
        if len(addresses) == 1:
            print(f"unreachable: {exc}")
        else:
            print(f"unreachable: {label}: {exc}")
    if not results:
        return 1
    if len(results) == 1:
        snapshot = results[0][1]
    else:
        snapshot = merge_snapshots([snap for _, snap in results])
    # Fold this probe's own client-side resilience counters into the same
    # snapshot: one tree for everything the request chain observed.
    registry = Registry()
    registry.register("resilience_client", rstats.as_dict)
    snapshot.setdefault("collected", {}).update(
        registry.snapshot()["collected"]
    )
    if args.prom:
        print(prometheus_text(snapshot), end="")
        return 0 if not failures else 1
    counters = snapshot.get("counters", {})
    if len(addresses) == 1:
        print(f"stats for {args.connect}:")
    else:
        print(f"stats for {len(results)}/{len(addresses)} endpoint(s), "
              f"merged:")
    print(
        f"requests: {int(counters.get('requests', 0))}  "
        f"prefilter_calls: {int(counters.get('prefilter_calls', 0))}  "
        f"selected_points: {int(counters.get('selected_points', 0))}"
    )
    scanned = counters.get("raw_bytes_scanned", 0)
    sent = counters.get("wire_bytes_sent", 0)
    reduction = f" (reduction {scanned / sent:.1f}x)" if sent else ""
    print(
        f"raw_bytes_scanned: {scanned / 1e6:.2f} MB  "
        f"wire_bytes_sent: {sent / 1e3:.1f} kB{reduction}"
    )
    hists = snapshot.get("histograms", {})
    if "request_latency_seconds" in hists:
        print(f"latency (wall): {_hist_summary(hists['request_latency_seconds'])}")
    sim = hists.get("request_sim_seconds")
    if sim and sim.get("count"):
        print(f"latency (simulated): {_hist_summary(sim)}")
    collected = snapshot.get("collected", {})
    for label in ("array_cache", "selection_cache"):
        _print_cache_line(label, collected.get(label, {}))
    edge = collected.get("edge") or {}
    if edge.get("kind") == "edge":
        print(
            f"edge: hit_rate {float(edge.get('hit_rate') or 0.0):.0%}  "
            f"revalidations {int(edge.get('revalidations', 0))}  "
            f"invalidations {int(edge.get('invalidations', 0))}  "
            f"stale_served {int(edge.get('stale_served', 0))}  "
            f"upstream_errors {int(edge.get('upstream_errors', 0))}  "
            f"local_computes {int(edge.get('local_computes', 0))}"
        )
        for label in ("reply_cache", "block_cache"):
            _print_cache_line(label, collected.get(label, {}))
    admission = collected.get("admission") or {}
    if admission:
        limit = admission.get("max_inflight", 0) or "unlimited"
        print(
            f"admission: {int(admission.get('admitted', 0))} admitted, "
            f"{int(admission.get('shed', 0))} shed, "
            f"{int(admission.get('expired', 0))} expired, "
            f"peak_inflight {int(admission.get('peak_inflight', 0))}/{limit}"
        )
    integrity = int(counters.get("integrity_failures", 0))
    if integrity:
        print(f"integrity_failures: {integrity}")
    hedged = int(counters.get("hedged_requests", 0))
    failover = int(counters.get("failover_requests", 0))
    if hedged or failover:
        print(f"replication: {hedged} hedged request(s), "
              f"{failover} failover request(s)")
    slo = collected.get("slo") or {}
    for name in sorted(slo.get("tenants") or {}):
        state = slo["tenants"][name]
        flag = "  BURNING" if state.get("burning") else ""
        print(
            f"slo[{name}]: burn_fast {float(state.get('burn_fast', 0)):.2f} "
            f"burn_slow {float(state.get('burn_slow', 0)):.2f} "
            f"p99 {float(state.get('p99', 0)) * 1e3:.3g}ms "
            f"slo_sheds {int(state.get('slo_sheds', 0))}{flag}"
        )
    flightrec = collected.get("flightrec") or {}
    if flightrec.get("enabled"):
        print(
            f"flightrec: {int(flightrec.get('recorded', 0))} recorded, "
            f"{int(flightrec.get('retained', 0))}/"
            f"{int(flightrec.get('capacity', 0))} retained, "
            f"{int(flightrec.get('dumps', 0))} dumps"
        )
    profiler = collected.get("profiler") or {}
    if profiler.get("enabled") and profiler.get("samples"):
        print(
            f"profiler: {int(profiler.get('samples', 0))} samples @ "
            f"{float(profiler.get('hz', 0)):g} Hz, "
            f"{int(profiler.get('distinct_stacks', 0))} distinct stacks"
        )
    resilience = collected.get("resilience_client") or {}
    if resilience:
        inner = " ".join(f"{k}={v}" for k, v in sorted(resilience.items()))
        print(f"resilience (this probe): {inner}")
    return 0 if not failures else 1


def _suffixed(path: str, label: str) -> str:
    """``dump.jsonl`` + ``shard1`` -> ``dump-shard1.jsonl``."""
    root, dot, ext = path.rpartition(".")
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in label)
    if not dot:
        return f"{path}-{safe}"
    return f"{root}-{safe}.{ext}"


def cmd_dump(args) -> int:
    """Pull a server's flight-recorder ring over RPC (``repro dump``)."""
    import json

    addresses = _split_addresses(args.connect)
    if addresses is None:
        return 2
    rstats = ResilienceStats()
    results, failures = _call_addresses(
        addresses, args, "dump", rstats,
        params=(args.reason, args.last if args.last > 0 else None),
    )
    for label, exc in failures:
        print(f"unreachable: {label}: {exc}")
    for label, reply in results:
        if not reply.get("enabled"):
            print(f"{label}: flight recorder disabled")
            continue
        events = reply.get("events") or []
        where = reply.get("path") or "not written (server has no --dump-dir)"
        print(f"{label}: {len(events)} event(s); server-side dump: {where}")
        if args.out:
            path = (args.out if len(results) == 1
                    else _suffixed(args.out, label))
            header = {
                "kind": "flightrec.header", "source": label,
                "reason": args.reason, "events": len(events),
            }
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(header, sort_keys=True) + "\n")
                for event in events:
                    fh.write(json.dumps(event, sort_keys=True, default=str)
                             + "\n")
            print(f"wrote {path}")
    return 0 if results and not failures else 1


def cmd_prof(args) -> int:
    """Pull a server's sampling-profiler stacks (``repro prof``)."""
    addresses = _split_addresses(args.connect)
    if addresses is None:
        return 2
    rstats = ResilienceStats()
    results, failures = _call_addresses(
        addresses, args, "profile", rstats,
        params=(args.top if args.top > 0 else None,),
    )
    for label, exc in failures:
        print(f"unreachable: {label}: {exc}")
    for label, snap in results:
        if not snap.get("enabled"):
            print(f"{label}: profiler disabled")
            continue
        stacks = snap.get("stacks") or {}
        print(f"{label}: {int(snap.get('samples', 0))} samples @ "
              f"{float(snap.get('hz', 0)):g} Hz over "
              f"{float(snap.get('elapsed', 0)):.1f}s, "
              f"{len(stacks)} distinct stack(s)")
        lines = [f"{stack} {count}" for stack, count in stacks.items()]
        if args.out:
            path = (args.out if len(results) == 1
                    else _suffixed(args.out, label))
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + ("\n" if lines else ""))
            print(f"wrote {path} (collapsed-stack format: feed to "
                  f"flamegraph.pl or speedscope)")
        else:
            for line in lines[:args.show]:
                print(f"  {line}")
    return 0 if results and not failures else 1


def cmd_rebalance(args) -> int:
    """Plan (and optionally apply) a hot-shard re-replication pass.

    Loads come from live shard polls when ``--connect`` names the
    cluster's endpoints, else from the manifest's block placement.  The
    plan is printed either way; ``--apply`` writes it back as a new
    manifest generation (``map_version + 1``) that running servers and
    clients pick up through the live-map protocol.
    """
    import json

    from repro.cluster import (
        apply_plan,
        load_manifest,
        loads_from_polls,
        plan_rebalance,
    )

    fs = _open_fs(args.store, args.bucket)
    sign_key = args.sign_key.encode() if args.sign_key else None
    manifest = load_manifest(fs, args.key, sign_key=sign_key)
    loads = None
    if args.connect:
        from repro.obs.top import poll_stats
        from repro.rpc.pool import EndpointPool

        addresses = _split_addresses(args.connect)
        if addresses is None:
            return 2
        if len(addresses) < manifest.shards:
            print(f"error: manifest names {manifest.shards} shard(s) but "
                  f"--connect lists only {len(addresses)} address(es)",
                  file=sys.stderr)
            return 2
        labels = [label for label, _, _ in addresses]
        with EndpointPool.connect_tcp(labels) as pool:
            polls = poll_stats(pool, labels)
        loads = loads_from_polls(polls)
    plan = plan_rebalance(
        manifest, loads=loads,
        replicas=args.replicas if args.replicas > 0 else None,
        hot_factor=args.hot_factor,
    )
    for line in plan.summary():
        print(line)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(plan.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if plan.empty:
        return 0
    if not args.apply:
        print("dry run (re-run with --apply to write the new manifest "
              "generation)")
        return 0
    fresh = apply_plan(fs, manifest, plan, sign_key=sign_key)
    print(f"applied: {args.key} now at map_version {fresh.map_version} "
          f"({len(plan.moves)} chain rewrite(s))")
    return 0


def cmd_top(args) -> int:
    """Live cluster console over every address's ``stats`` endpoint."""
    from repro.obs.top import run_top

    addresses = _split_addresses(args.connect)
    if addresses is None:
        return 2
    return run_top(
        [label for label, _, _ in addresses],
        interval=args.interval,
        iterations=args.iterations if args.iterations > 0 else None,
        once=args.once,
        as_json=args.json,
    )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Near-data visualization pipelines (SC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic dataset into a store")
    p.add_argument("dataset", choices=["asteroid", "nyx"])
    p.add_argument("--store", required=True, help="directory-backed store root")
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--dim", type=int, default=64, help="grid points per axis")
    p.add_argument("--codec", default="lz4", help="storage codec per array")
    p.add_argument("--arrays", default="", help="comma-separated array subset")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("info", help="list and describe VGF objects in a store")
    p.add_argument("--store", required=True)
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--prefix", default="")
    p.add_argument("--stats", action="store_true",
                   help="also print per-array value statistics")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("serve", help="run an NDP server over a store")
    p.add_argument("--store", required=True)
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--timeout", type=float, default=0,
                   help="exit after N seconds (0 = run forever)")
    p.add_argument("--cache-bytes", type=int, default=256 * 2**20,
                   help="decoded-array LRU cache budget in bytes "
                        "(default 256 MiB; 0 disables)")
    p.add_argument("--selection-cache", type=int, default=64 * 2**20,
                   metavar="BYTES",
                   help="encoded pre-filter reply cache budget in bytes "
                        "(default 64 MiB; 0 disables)")
    p.add_argument("--max-inflight", type=int, default=0,
                   help="admission control: max requests processed "
                        "concurrently; excess queue then shed (0 = unlimited)")
    p.add_argument("--max-pending", type=int, default=0,
                   help="admission control: max requests queued waiting for "
                        "a slot before shedding (0 = shed immediately once "
                        "--max-inflight is saturated)")
    p.add_argument("--max-connections", type=int, default=0,
                   help="refuse TCP connections beyond this many concurrent "
                        "(0 = unlimited)")
    p.add_argument("--drain-timeout", type=float, default=5.0,
                   help="on shutdown, seconds to let in-flight requests "
                        "finish before forcing connections closed")
    p.add_argument("--verify-checksums", choices=["on", "off"], default="on",
                   help="verify at-rest array CRCs on every read and stamp "
                        "pre-filter replies with an integrity checksum "
                        "(default on)")
    p.add_argument("--trace-out", default="", metavar="FILE",
                   help="record server-side spans and write them on exit "
                        "(.jsonl = span log, else Chrome trace JSON)")
    p.add_argument("--serving-core", choices=["threaded", "async"],
                   default="threaded",
                   help="threaded = one thread per connection, one request "
                        "at a time per socket; async = event-loop core: "
                        "requests pipeline per connection and dispatch runs "
                        "on a fair-queued worker pool (default threaded)")
    p.add_argument("--workers", type=int, default=8,
                   help="dispatch worker threads for --serving-core async "
                        "(default 8)")
    p.add_argument("--tenant-weights", default="", metavar="NAME=W,...",
                   help="async core: fair-share weights per tenant, e.g. "
                        "'interactive=3,batch=1' (unlisted tenants get "
                        "weight 1)")
    p.add_argument("--tenant-inflight", type=int, default=0,
                   help="async core: max requests one tenant may have "
                        "executing at once (0 = unlimited)")
    p.add_argument("--tenant-pending", type=int, default=0,
                   help="async core: max requests one tenant may queue "
                        "before its excess is shed with retry_after "
                        "(0 = unlimited)")
    p.add_argument("--flight-recorder", choices=["on", "off"], default="on",
                   help="always-on ring of recent structured events, "
                        "dumpable via `repro dump` / SIGUSR2 (default on)")
    p.add_argument("--dump-dir", default="", metavar="DIR",
                   help="directory for automatic flight-recorder dumps on "
                        "errors/sheds/integrity failures and on drain "
                        "(default: no automatic dumps)")
    p.add_argument("--profile-hz", type=float, default=67.0,
                   help="sampling-profiler frequency; stacks served via "
                        "`repro prof` (default 67; 0 disables)")
    p.add_argument("--slo-latency", type=float, default=0.25,
                   help="per-tenant latency SLO threshold in seconds "
                        "(default 0.25)")
    p.add_argument("--slo-objective", type=float, default=0.99,
                   help="fraction of requests that must meet the SLO "
                        "(default 0.99)")
    p.add_argument("--slo-shed", action="store_true",
                   help="under overload, shed tenants that are burning "
                        "their error budget before well-behaved ones")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load generator against a running server",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.add_argument("--connections", type=int, default=4,
                   help="concurrent client connections (default 4)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="target arrivals per second per connection "
                        "(default 50)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds of load to generate (default 2)")
    p.add_argument("--method", default="health",
                   help="RPC method to call (default health)")
    p.add_argument("--params", default="", metavar="JSON",
                   help="method params as a JSON array, e.g. "
                        "'[\"key\", \"rho\"]'")
    p.add_argument("--core", choices=["mux", "legacy"], default="mux",
                   help="mux = pipelined multiplexed client; legacy = "
                        "blocking one-request-at-a-time client "
                        "(default mux)")
    p.add_argument("--tenant", default="",
                   help="tenant name stamped into each request's ctx map "
                        "(drives the async core's fair queue)")
    p.add_argument("--call-timeout", type=float, default=30.0,
                   help="per-request timeout in seconds (default 30)")
    p.add_argument("--seed", type=int, default=1234,
                   help="RNG seed for the Poisson arrival plan")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the full report (percentiles + histogram) "
                        "as JSON")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "verify", help="verify stored VGF checksums (detect at-rest corruption)"
    )
    p.add_argument("--store", required=True)
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--prefix", default="")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("shard", help="split a stored VGF into a block-"
                                     "partitioned cluster layout")
    p.add_argument("key", help="source VGF object key")
    p.add_argument("--store", required=True)
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--blocks", required=True, metavar="AxBxC",
                   help="block layout per axis, e.g. 2x2x2")
    p.add_argument("--shards", type=int, default=0,
                   help="shard (server) count; blocks are assigned "
                        "round-robin (default: one shard per block)")
    p.add_argument("--codec", default="lz4", help="storage codec per block")
    p.add_argument("--replicas", type=int, default=1, metavar="R",
                   help="serve each block from R consecutive shards "
                        "(ordered replica chain; default 1 = no "
                        "replication)")
    p.add_argument("--sign-key", default="",
                   help="HMAC key for the manifest signature (default: "
                        "unkeyed SHA-256 content digest)")
    p.set_defaults(func=cmd_shard)

    p = sub.add_parser("serve-cluster", help="run one NDP server per shard "
                                             "of a manifest")
    p.add_argument("--store", required=True)
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--manifest", required=True, metavar="KEY",
                   help="shard manifest object key (see `repro shard`)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--timeout", type=float, default=0,
                   help="exit after N seconds (0 = run forever)")
    p.add_argument("--drain-timeout", type=float, default=5.0)
    p.add_argument("--endpoints-out", default="", metavar="FILE",
                   help="write the shard host:port list here, one per line")
    p.add_argument("--sign-key", default="",
                   help="HMAC key the manifest was signed with")
    p.add_argument("--shard", type=int, default=-1, metavar="N",
                   help="serve only shard N in this process (one process "
                        "per shard; default: every shard in-process)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port for --shard mode (default ephemeral)")
    p.add_argument("--map-poll", type=float, default=1.0, metavar="SECONDS",
                   help="min seconds between manifest re-reads for the "
                        "live map_version token (default 1)")
    p.set_defaults(func=cmd_serve_cluster)

    p = sub.add_parser("serve-edge", help="run an edge cache in front of "
                                          "one or more NDP servers")
    p.add_argument("--upstream", required=True, metavar="ADDR[,ADDR...]",
                   help="upstream NDP server address(es), in failover order")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--timeout", type=float, default=0,
                   help="exit after N seconds (0 = run forever)")
    p.add_argument("--cache-bytes", type=int, default=128 * 2**20,
                   help="decoded-array block cache budget in bytes "
                        "(default 128 MiB; 0 disables local compute)")
    p.add_argument("--reply-cache", type=int, default=64 * 2**20,
                   metavar="BYTES",
                   help="encoded-reply cache budget in bytes "
                        "(default 64 MiB; 0 makes the edge a pure proxy)")
    p.add_argument("--coherence", choices=["strict", "watch"],
                   default="strict",
                   help="strict: revalidate upstream per serve (never "
                        "stale); watch: serve from last-known tokens, "
                        "re-probed every --watch-interval")
    p.add_argument("--watch-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="background re-probe period for --coherence=watch "
                        "(default 1; 0 disables the poller)")
    p.add_argument("--serve-stale", action="store_true",
                   help="when the upstream is unreachable, serve the "
                        "last-known-fresh cached reply instead of the "
                        "transport error")
    p.add_argument("--promote-after", type=int, default=2, metavar="N",
                   help="reply misses per (object, array) before the edge "
                        "pulls the block and computes contours locally "
                        "(default 2)")
    p.add_argument("--wan-profile", default="",
                   choices=["", "lan", "wan-metro", "wan-cross-country",
                            "wan-transatlantic"],
                   help="throttle the upstream dial through a named WAN "
                        "latency/bandwidth model (default: none)")
    p.add_argument("--upstream-timeout", type=float, default=30.0,
                   help="socket timeout for upstream dials (default 30)")
    p.add_argument("--max-connections", type=int, default=0,
                   help="refuse TCP connections beyond this many concurrent "
                        "(0 = unlimited)")
    p.add_argument("--verify-checksums", choices=["on", "off"], default="on",
                   help="stamp CRCs on locally computed replies (must match "
                        "the upstream server's setting)")
    p.add_argument("--trace-out", default="",
                   help="write the edge's trace spans here on exit")
    p.set_defaults(func=cmd_serve_edge)

    p = sub.add_parser("contour", help="offloaded contour of a stored array")
    p.add_argument("--connect", default="", metavar="HOST:PORT",
                   help="NDP server address (omit for in-process over "
                        "--store); with --cluster, a comma-separated "
                        "address per shard")
    p.add_argument("--store", default="")
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--key", default="",
                   help="VGF object key (monolithic path)")
    p.add_argument("--cluster", default="", metavar="MANIFEST_KEY",
                   help="contour a sharded dataset via its manifest "
                        "(scatter-gather across shards)")
    p.add_argument("--array", required=True)
    p.add_argument("--values", required=True, help="comma-separated isovalues")
    p.add_argument("--render", default="", help="write a PPM frame here")
    p.add_argument("--width", type=int, default=640)
    p.add_argument("--height", type=int, default=480)
    p.add_argument("--trace-out", default="", metavar="FILE",
                   help="trace the request end-to-end and write the merged "
                        "client+server tree (.jsonl = span log, else Chrome "
                        "trace JSON for Perfetto)")
    _add_resilience_flags(p)
    p.add_argument("--fallback", action="store_true",
                   help="degrade to a baseline full read through --store "
                        "when the NDP server is unreachable")
    p.add_argument("--no-hedge", action="store_true",
                   help="cluster mode: disable hedged replica reads "
                        "(strict primary-then-failover ordering)")
    p.add_argument("--hedge-quantile", type=float, default=0.95,
                   help="cluster mode: launch a hedge once the primary is "
                        "slower than this quantile of its recent latency "
                        "(default 0.95)")
    p.add_argument("--hedge-floor", type=float, default=0.005,
                   help="minimum hedge delay in seconds (default 0.005)")
    p.add_argument("--hedge-cap", type=float, default=1.0,
                   help="maximum hedge delay in seconds (default 1.0)")
    p.set_defaults(func=cmd_contour)

    p = sub.add_parser("health", help="probe an NDP server's health endpoint")
    p.add_argument("--connect", required=True, metavar="HOST:PORT[,..]",
                   help="one address, or a comma-separated list for a "
                        "cluster-wide health table")
    _add_resilience_flags(p)
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "stats", help="pretty-print an NDP server's unified registry snapshot"
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT[,..]",
                   help="one address, or a comma-separated list merged "
                        "into one table (counters summed, histograms "
                        "merged bucket-wise)")
    p.add_argument("--prom", action="store_true",
                   help="print Prometheus text exposition instead")
    _add_resilience_flags(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "dump", help="pull a server's flight-recorder ring (recent "
                     "structured events) over RPC"
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT[,..]")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the events as JSONL here (multi-address "
                        "lists get one file per shard)")
    p.add_argument("--last", type=float, default=0.0, metavar="SECONDS",
                   help="only events from the last N seconds "
                        "(0 = server default window)")
    p.add_argument("--reason", default="rpc",
                   help="reason label stamped into the dump header")
    _add_resilience_flags(p)
    p.set_defaults(func=cmd_dump)

    p = sub.add_parser(
        "prof", help="pull a server's sampling-profiler flamegraph stacks"
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT[,..]")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write collapsed stacks here (.collapsed format "
                        "for flamegraph.pl / speedscope / inferno)")
    p.add_argument("--top", type=int, default=0,
                   help="only the N hottest stacks (0 = all)")
    p.add_argument("--show", type=int, default=15,
                   help="stacks printed to stdout without --out "
                        "(default 15)")
    _add_resilience_flags(p)
    p.set_defaults(func=cmd_prof)

    p = sub.add_parser(
        "rebalance", help="plan/apply hot-shard re-replication for a "
                          "manifest (writes a new map_version)"
    )
    p.add_argument("key", help="shard manifest object key")
    p.add_argument("--store", required=True)
    p.add_argument("--bucket", default=DEFAULT_BUCKET)
    p.add_argument("--connect", default="", metavar="HOST:PORT[,..]",
                   help="poll these shard endpoints for live load scores "
                        "(default: plan from block placement only)")
    p.add_argument("--replicas", type=int, default=0, metavar="R",
                   help="target replication factor (default: keep the "
                        "manifest's current factor)")
    p.add_argument("--hot-factor", type=float, default=1.5,
                   help="a shard is hot when its load exceeds this multiple "
                        "of the cluster mean (default 1.5)")
    p.add_argument("--apply", action="store_true",
                   help="write the plan back as manifest generation "
                        "map_version+1 (default: dry run)")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the full plan as JSON")
    p.add_argument("--sign-key", default="",
                   help="HMAC key the manifest was signed with")
    p.set_defaults(func=cmd_rebalance)

    p = sub.add_parser(
        "top", help="live cluster console: throughput, queues, burn rates "
                    "across every shard"
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT[,..]",
                   help="comma-separated addresses of every shard to watch")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--iterations", type=int, default=0,
                   help="exit after N polls (0 = run until interrupted)")
    p.add_argument("--once", action="store_true",
                   help="poll once and exit (scripting)")
    p.add_argument("--json", action="store_true",
                   help="print the raw view dict as JSON instead of tables")
    p.set_defaults(func=cmd_top)

    return parser


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--retries", type=int, default=3,
                   help="total attempts per RPC (default 3)")
    p.add_argument("--backoff", type=float, default=0.05,
                   help="base retry backoff in seconds (exponential)")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="per-request time budget in seconds (0 = none)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive failures before the circuit breaker "
                        "opens (0 = breaker off)")
    p.add_argument("--breaker-reset", type=float, default=30.0,
                   help="seconds an open breaker waits before a half-open probe")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
