"""Benchmark environment: populated store + baseline/NDP load paths.

A :class:`BenchEnv` reproduces the paper's two-node setup (Fig. 11) on the
simulated testbed:

* an object store whose GETs are charged to the testbed's SSD model (the
  MinIO + local SSD path),
* a **baseline** load path: a *remote* s3fs mount (every byte also crosses
  the network link) reading whole array blocks, with decompression charged
  at the client,
* an **NDP** load path: a *local* s3fs mount feeding an
  :class:`~repro.core.ndp_server.NDPServer`, whose pre-filtered selection
  crosses the link through a :class:`~repro.rpc.transport.SimulatedTransport`.

Every load runs the real code (real decompression, real pre-filter, real
geometry); the simulated clock only decides what the load *costs* — see
:mod:`repro.storage.netsim` for the calibration.

Datasets are generated once per environment and written under
``<dataset>/<codec>/ts<step>.vgf`` for each requested codec, mirroring the
paper's separately prepared RAW/GZip/LZ4 stores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ndp_server import NDPServer
from repro.core.prefilter import prefilter_contour, selection_rate
from repro.datasets.asteroid import AsteroidImpactDataset, AsteroidParams
from repro.datasets.nyx import NyxDataset, NyxParams
from repro.errors import ReproError
from repro.grid.uniform import UniformGrid
from repro.io.vgf import read_vgf_array, read_vgf_info, write_vgf
from repro.rpc.client import RPCClient
from repro.rpc.transport import InProcessTransport, SimulatedTransport
from repro.storage.netsim import Testbed
from repro.storage.object_store import MemoryBackend, ObjectStore
from repro.storage.s3fs import S3FileSystem

__all__ = ["BenchEnv", "LoadResult"]

#: The paper's evaluation grid: 5 contour values from 0.1 to 0.9.
CONTOUR_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Codecs evaluated throughout the paper.
CODECS = ("raw", "gzip", "lz4")


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one measured data load."""

    seconds: float          # simulated data-load time
    stored_bytes: int       # bytes read from the store
    raw_bytes: int          # decompressed array size
    network_bytes: int      # bytes that crossed the client<->storage link
    extra: dict | None = None

    @property
    def reduction_ratio(self) -> float:
        """Network reduction relative to shipping the stored bytes."""
        if self.network_bytes <= 0:
            return float("inf")
        return self.stored_bytes / self.network_bytes


class BenchEnv:
    """A populated store plus measured baseline/NDP load operations."""

    def __init__(
        self,
        dims: tuple[int, int, int] = (96, 96, 96),
        codecs: tuple[str, ...] = CODECS,
        arrays: tuple[str, ...] = ("v02", "v03"),
        testbed: Testbed | None = None,
        with_asteroid: bool = True,
        with_nyx: bool = False,
        nyx_arrays: tuple[str, ...] = ("baryon_density",),
    ):
        self.testbed = testbed if testbed is not None else Testbed()
        self.store = ObjectStore(MemoryBackend(), device=self.testbed.ssd)
        self.store.create_bucket("sim")
        self.codecs = tuple(codecs)
        self.arrays = tuple(arrays)
        self.nyx_arrays = tuple(nyx_arrays)
        #: in-memory copies of the generated grids, keyed by (dataset, step)
        self.grids: dict[tuple[str, int], UniformGrid] = {}
        self.asteroid: AsteroidImpactDataset | None = None
        self.nyx: NyxDataset | None = None

        if with_asteroid:
            self.asteroid = AsteroidImpactDataset(AsteroidParams(dims=dims))
            for step in self.asteroid.timesteps:
                grid = self.asteroid.generate_arrays(step, list(arrays))
                self.grids[("asteroid", step)] = grid
                for codec in self.codecs:
                    blob = write_vgf(grid, codec=codec, meta={"timestep": step})
                    self.store.put_object("sim", self.key("asteroid", codec, step), blob)
        if with_nyx:
            self.nyx = NyxDataset(NyxParams(dims=dims))
            full = self.nyx.generate()
            grid = UniformGrid(full.dims, full.origin, full.spacing)
            for name in self.nyx_arrays:
                grid.point_data.add(full.point_data.get(name))
            self.grids[("nyx", 0)] = grid
            for codec in self.codecs:
                blob = write_vgf(grid, codec=codec, meta={"timestep": 0})
                self.store.put_object("sim", self.key("nyx", codec, 0), blob)
        self.testbed.reset()

        # NDP side: a local (link-free) mount feeding the server; the RPC
        # hop is what crosses the simulated network.  Both mounts use a
        # 256 KiB readahead chunk so a ranged block read fetches (and is
        # charged for) little more than the block itself — the paper's
        # array-selection behaviour.
        chunk = 256 * 1024
        self._local_fs = S3FileSystem(self.store, "sim", link=None, chunk_bytes=chunk)
        self.ndp_server = NDPServer(self._local_fs, testbed=self.testbed)
        self.ndp_client = RPCClient(
            SimulatedTransport(
                InProcessTransport(self.ndp_server.dispatch), self.testbed.net
            )
        )
        # Baseline side: a remote mount (every byte crosses the link).
        self._remote_fs = S3FileSystem(self.store, "sim", link=self.testbed.net, chunk_bytes=chunk)

    # ------------------------------------------------------------------
    @staticmethod
    def key(dataset: str, codec: str, step: int) -> str:
        return f"{dataset}/{codec}/ts{step:05d}.vgf"

    @property
    def timesteps(self) -> tuple[int, ...]:
        if self.asteroid is None:
            raise ReproError("environment was built without the asteroid dataset")
        return self.asteroid.timesteps

    def grid(self, dataset: str, step: int) -> UniformGrid:
        return self.grids[(dataset, step)]

    # ------------------------------------------------------------------
    # Measured load operations
    # ------------------------------------------------------------------
    def baseline_load(
        self, dataset: str, codec: str, step: int, array: str, local: bool = False
    ) -> tuple[UniformGrid, LoadResult]:
        """Whole-array load through the (remote by default) mount.

        ``local=True`` reproduces the paper's Fig. 5c/5f local-filesystem
        runs: no network link, decompression still charged.
        """
        tb = self.testbed
        fs = self._local_fs if local else self._remote_fs
        t0 = tb.clock.now
        ssd0, net0 = tb.ssd.total_bytes, tb.net.total_bytes
        with fs.open(self.key(dataset, codec, step)) as fh:
            info = read_vgf_info(fh)
            arr, entry = read_vgf_array(fh, array, info)
        tb.charge_decompress(entry.codec, entry.raw_bytes)
        grid = UniformGrid(info.dims, info.origin, info.spacing)
        grid.point_data.add(arr)
        result = LoadResult(
            seconds=tb.clock.now - t0,
            stored_bytes=tb.ssd.total_bytes - ssd0,
            raw_bytes=entry.raw_bytes,
            network_bytes=tb.net.total_bytes - net0,
        )
        return grid, result

    def ndp_load(
        self,
        dataset: str,
        codec: str,
        step: int,
        array: str,
        values,
        mode: str = "cell-closure",
        encoding: str = "auto",
        wire_codec: str = "lz4",
    ) -> tuple[dict, LoadResult]:
        """Offloaded pre-filter load; returns the encoded selection + cost."""
        tb = self.testbed
        t0 = tb.clock.now
        ssd0, net0 = tb.ssd.total_bytes, tb.net.total_bytes
        if hasattr(values, "__iter__"):
            values = list(values)
        else:
            values = [values]
        encoded = self.ndp_client.call(
            "prefilter_contour",
            self.key(dataset, codec, step),
            array,
            values,
            mode,
            encoding,
            wire_codec,
        )
        stats = encoded.get("stats", {})
        if wire_codec != "raw":
            # Client-side decompression of the selection payload.
            payload = 8 * int(stats.get("selected_points", 0)) + 4
            tb.charge_decompress(wire_codec, payload)
        result = LoadResult(
            seconds=tb.clock.now - t0,
            stored_bytes=tb.ssd.total_bytes - ssd0,
            raw_bytes=int(stats.get("raw_bytes", 0)),
            network_bytes=tb.net.total_bytes - net0,
            extra=stats,
        )
        return encoded, result

    # ------------------------------------------------------------------
    # Static (non-load) statistics used by several figures
    # ------------------------------------------------------------------
    def selection_permillage(self, dataset: str, step: int, array: str, values) -> float:
        """The paper's Fig. 6 statistic on the in-memory grid."""
        return selection_rate(self.grid(dataset, step), array, values)

    def selection(self, dataset: str, step: int, array: str, values,
                  mode: str = "cell-closure"):
        return prefilter_contour(self.grid(dataset, step), array, values, mode=mode)

    def stored_sizes(self, dataset: str, step: int, array: str) -> dict[str, int]:
        """Stored block size of one array under every populated codec."""
        sizes = {}
        for codec in self.codecs:
            # Read through the backend directly: metadata inspection is not
            # part of any measured run, so it must not touch the clock.
            blob = self.store.backend.get("sim", self.key(dataset, codec, step), 0, None)
            info = read_vgf_info(blob)
            sizes[codec] = info.array(array).stored_bytes
        return sizes
