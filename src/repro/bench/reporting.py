"""Aligned-table formatting for benchmark output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table", "format_value"]


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if columns is None:
        columns = list(rows[0]) if rows else []
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                title: str | None = None) -> None:
    print()
    print(format_table(rows, columns, title))
