"""Benchmark harness: environments, per-figure experiments, reporting.

``benchmarks/`` (pytest-benchmark) drives this package: a
:class:`~repro.bench.harness.BenchEnv` populates an object store with the
synthetic datasets under every codec, wires the baseline and NDP paths
over the paper-calibrated simulated testbed, and
:mod:`~repro.bench.experiments` reproduces each figure/table as a list of
rows that :mod:`~repro.bench.reporting` prints next to the paper's
expected shape.
"""

from repro.bench.harness import BenchEnv, LoadResult
from repro.bench.reporting import format_table, print_table

__all__ = ["BenchEnv", "LoadResult", "format_table", "print_table"]
