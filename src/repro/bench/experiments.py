"""Per-figure/table experiment definitions.

Each ``run_*`` function reproduces one artifact of the paper's evaluation
as a list of row dicts (printable with
:func:`~repro.bench.reporting.print_table`).  DESIGN.md §4 maps artifacts
to these functions; EXPERIMENTS.md records measured-vs-paper shapes.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import CODECS, CONTOUR_VALUES, BenchEnv
from repro.core.encoding import encode_selection, wire_size
from repro.core.postfilter import postfilter_contour

__all__ = [
    "run_fig1",
    "run_fig5_sizes",
    "run_fig5_remote",
    "run_fig5_local",
    "run_fig6",
    "run_fig13",
    "run_table2",
    "run_fig14",
    "run_encoding_ablation",
    "run_link_sweep",
]


# ---------------------------------------------------------------------------
# Fig. 1 — reduction-ratio ranges: compression vs contour-based selection
# ---------------------------------------------------------------------------

def run_fig1(env: BenchEnv, array: str = "v02") -> list[dict]:
    """Reduction ratios across timesteps and contour values.

    Compression rows report ``raw / stored``; the NDP row reports
    ``raw / selection-wire-bytes`` over contour values 0.1..0.9 — the
    paper's "7 orders of magnitude" candidate.
    """
    gzip_r, lz4_r, ndp_r = [], [], []
    for step in env.timesteps:
        sizes = env.stored_sizes("asteroid", step, array)
        raw = sizes["raw"]
        gzip_r.append(raw / sizes["gzip"])
        lz4_r.append(raw / sizes["lz4"])
        for v in CONTOUR_VALUES:
            sel = env.selection("asteroid", step, array, [v])
            wire = wire_size(encode_selection(sel))
            ndp_r.append(raw / wire)
    rows = []
    for name, ratios in (("gzip", gzip_r), ("lz4", lz4_r), ("contour-selection", ndp_r)):
        rows.append(
            {
                "technique": name,
                "min_ratio": float(np.min(ratios)),
                "median_ratio": float(np.median(ratios)),
                "max_ratio": float(np.max(ratios)),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 5 — compression sizes and load times (remote + local placements)
# ---------------------------------------------------------------------------

def run_fig5_sizes(env: BenchEnv, array: str) -> list[dict]:
    """Fig. 5a/5d: stored sizes (MB) per codec per timestep."""
    rows = []
    for step in env.timesteps:
        sizes = env.stored_sizes("asteroid", step, array)
        rows.append(
            {
                "timestep": step,
                "raw_mb": sizes["raw"] / 1e6,
                "gzip_mb": sizes["gzip"] / 1e6,
                "lz4_mb": sizes["lz4"] / 1e6,
                "gzip_ratio": sizes["raw"] / sizes["gzip"],
                "lz4_ratio": sizes["raw"] / sizes["lz4"],
            }
        )
    return rows


def _fig5_times(env: BenchEnv, array: str, local: bool) -> list[dict]:
    rows = []
    for step in env.timesteps:
        row = {"timestep": step}
        for codec in CODECS:
            _, res = env.baseline_load("asteroid", codec, step, array, local=local)
            row[f"{codec}_s"] = res.seconds
        rows.append(row)
    return rows


def run_fig5_remote(env: BenchEnv, array: str) -> list[dict]:
    """Fig. 5b/5e: load times through the remote mount (1 GbE)."""
    return _fig5_times(env, array, local=False)


def run_fig5_local(env: BenchEnv, array: str) -> list[dict]:
    """Fig. 5c/5f: load times from a local filesystem (LZ4 beats GZip)."""
    return _fig5_times(env, array, local=True)


# ---------------------------------------------------------------------------
# Fig. 6 — data selection rates (permillage)
# ---------------------------------------------------------------------------

def run_fig6(env: BenchEnv, array: str) -> list[dict]:
    rows = []
    for step in env.timesteps:
        row = {"timestep": step}
        for v in CONTOUR_VALUES:
            row[f"val{v:g}"] = env.selection_permillage("asteroid", step, array, [v])
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — baseline vs NDP load times, per codec/array/contour value
# ---------------------------------------------------------------------------

def run_fig13(env: BenchEnv, array: str, codec: str,
              values=CONTOUR_VALUES) -> list[dict]:
    """One Fig. 13 subfigure: rows = timesteps, columns = baseline + NDP
    per contour value."""
    rows = []
    for step in env.timesteps:
        _, base = env.baseline_load("asteroid", codec, step, array)
        row = {"timestep": step, "baseline_s": base.seconds}
        for v in values:
            _, ndp = env.ndp_load("asteroid", codec, step, array, [v])
            row[f"ndp{v:g}_s"] = ndp.seconds
        row["speedup_at_0.1"] = row["baseline_s"] / row["ndp0.1_s"]
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table II — speedup matrix over technique combinations
# ---------------------------------------------------------------------------

def run_table2(env: BenchEnv, arrays=("v02", "v03"),
               values=CONTOUR_VALUES) -> list[dict]:
    """Speedups in total (summed over timesteps) data load time, relative
    to the RAW baseline — the paper's Table II."""
    rows = []
    for array in arrays:
        base_total = {codec: 0.0 for codec in CODECS}
        for codec in CODECS:
            for step in env.timesteps:
                _, res = env.baseline_load("asteroid", codec, step, array)
                base_total[codec] += res.seconds
        raw_total = base_total["raw"]
        for v in values:
            ndp_total = {codec: 0.0 for codec in CODECS}
            for codec in CODECS:
                for step in env.timesteps:
                    _, res = env.ndp_load("asteroid", codec, step, array, [v])
                    ndp_total[codec] += res.seconds
            rows.append(
                {
                    "array": array,
                    "value": v,
                    "RAW": 1.0,
                    "NDP": raw_total / ndp_total["raw"],
                    "GZip": raw_total / base_total["gzip"],
                    "LZ4": raw_total / base_total["lz4"],
                    "GZip+NDP": raw_total / ndp_total["gzip"],
                    "LZ4+NDP": raw_total / ndp_total["lz4"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 14 — Nyx dataset load times
# ---------------------------------------------------------------------------

def run_fig14(env: BenchEnv, threshold: float = 81.66) -> list[dict]:
    """Baseline vs NDP on the Nyx baryon-density halo contour."""
    rows = []
    for codec in CODECS:
        _, base = env.baseline_load("nyx", codec, 0, "baryon_density")
        _, ndp = env.ndp_load("nyx", codec, 0, "baryon_density", [threshold])
        rows.append(
            {
                "codec": codec,
                "baseline_s": base.seconds,
                "ndp_s": ndp.seconds,
                "speedup": base.seconds / ndp.seconds,
                "stored_mb": base.stored_bytes / 1e6,
                "ndp_net_kb": ndp.network_bytes / 1e3,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations (beyond the paper)
# ---------------------------------------------------------------------------

def run_encoding_ablation(env: BenchEnv, array: str = "v02") -> list[dict]:
    """Wire size of each selection encoding across timesteps, plus the
    effect of compressing the payload (the NDP server's default)."""
    rows = []
    for step in env.timesteps:
        sel = env.selection("asteroid", step, array, list(CONTOUR_VALUES))
        row = {"timestep": step, "permillage": sel.permillage}
        for method in ("ids", "bitmap", "auto"):
            row[f"{method}_kb"] = wire_size(encode_selection(sel, method)) / 1e3
        for codec in ("lz4", "gzip"):
            row[f"auto+{codec}_kb"] = (
                wire_size(encode_selection(sel, "auto", payload_codec=codec)) / 1e3
            )
        rows.append(row)
    return rows


def run_link_sweep(env: BenchEnv, array: str = "v02",
                   ratios=(0.25, 0.5, 1.0, 2.0, 4.0)) -> list[dict]:
    """NDP speedup vs network:SSD bandwidth ratio.

    The paper notes NDP's gain is "upperbounded by local data read times";
    sweeping the link speed shows the crossover explicitly.
    """
    rows = []
    base_net = env.testbed.net.bandwidth_bps
    step = env.timesteps[len(env.timesteps) // 2]
    try:
        for ratio in ratios:
            env.testbed.net.bandwidth_bps = env.testbed.ssd_bps * ratio
            _, base = env.baseline_load("asteroid", "raw", step, array)
            _, ndp = env.ndp_load("asteroid", "raw", step, array, [0.1])
            rows.append(
                {
                    "net_over_ssd": ratio,
                    "baseline_s": base.seconds,
                    "ndp_s": ndp.seconds,
                    "speedup": base.seconds / ndp.seconds,
                }
            )
    finally:
        env.testbed.net.bandwidth_bps = base_net
    return rows


def verify_ndp_equivalence(env: BenchEnv, dataset: str, step: int, array: str,
                           values) -> bool:
    """Cross-check: NDP-loaded geometry equals locally contoured geometry."""
    from repro.core.encoding import decode_selection
    from repro.filters.contour import contour_grid

    encoded, _ = env.ndp_load(dataset, "raw", step, array, values)
    recon = postfilter_contour(decode_selection(encoded), values)
    full = contour_grid(env.grid(dataset, step), array, values)
    return bool(
        np.array_equal(full.points, recon.points)
        and np.array_equal(full.polys.connectivity, recon.polys.connectivity)
    )
