"""Open-loop load generator for the RPC serving cores.

Closed-loop benchmarks (issue, wait, issue again) hide overload: a slow
server simply slows the generator down, so measured latency stays flat
while real-world clients — who do *not* politely wait for each other —
would be piling up.  This generator is **open-loop**: request arrival
times are drawn up front from a Poisson process at the target rate, and
each request's latency is measured from its *scheduled* arrival, so time
spent queued behind a saturated server or a blocking socket counts
against the server (no coordinated omission).

Two client cores are driven through the same codepath:

* ``core="mux"`` — one :class:`~repro.rpc.mux.MuxTransport` per
  connection, requests pipelined via ``submit`` with done-callbacks; an
  arbitrary number of requests ride each socket concurrently.
* ``core="legacy"`` — one blocking :class:`~repro.rpc.transport.TCPTransport`
  per connection; each connection serves its arrivals one at a time,
  which is exactly what the thread-per-connection server assumes.

The report carries p50/p90/p99/p999, an error/shed breakdown, and a
coarse log-scale histogram suitable for shipping into
``BENCH_results.json``.
"""

from __future__ import annotations

import math
import random
import threading
import time

from repro.errors import RPCError, ServerOverloadedError
from repro.rpc.msgpack import pack, unpack

__all__ = ["LoadReport", "run_load"]

_REQUEST = 0
_RESPONSE = 1

# Histogram bucket upper bounds in seconds (log-spaced, last is +inf).
_BUCKETS = [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
            0.1, 0.2, 0.5, 1.0, 2.0, 5.0]


def _percentile(sorted_vals: list, q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, math.ceil(q * len(sorted_vals)) - 1))
    return sorted_vals[idx]


class LoadReport:
    """Aggregated outcome of one load-generation run."""

    def __init__(self, core: str, connections: int, rate: float,
                 duration: float, latencies: list, ok: int, shed: int,
                 errors: int, wall: float, slowest: dict | None = None):
        self.core = core
        self.connections = connections
        self.rate = rate
        self.duration = duration
        self.ok = ok
        self.shed = shed
        self.errors = errors
        self.wall = wall
        self.slowest = slowest
        self.sent = ok + shed + errors
        lat = sorted(latencies)
        self.mean = sum(lat) / len(lat) if lat else 0.0
        self.p50 = _percentile(lat, 0.50)
        self.p90 = _percentile(lat, 0.90)
        self.p99 = _percentile(lat, 0.99)
        self.p999 = _percentile(lat, 0.999)
        self.max = lat[-1] if lat else 0.0
        self.histogram = self._histogram(lat)
        self.throughput = self.ok / wall if wall > 0 else 0.0

    @staticmethod
    def _histogram(sorted_lat: list) -> list:
        counts = [0] * (len(_BUCKETS) + 1)
        for v in sorted_lat:
            for i, bound in enumerate(_BUCKETS):
                if v <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        return [
            {"le": _BUCKETS[i] if i < len(_BUCKETS) else "inf", "count": c}
            for i, c in enumerate(counts)
        ]

    def to_dict(self) -> dict:
        return {
            "core": self.core,
            "connections": self.connections,
            "rate_hz": self.rate,
            "duration_s": self.duration,
            "wall_s": self.wall,
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "throughput_hz": self.throughput,
            "latency_s": {
                "mean": self.mean, "p50": self.p50, "p90": self.p90,
                "p99": self.p99, "p999": self.p999, "max": self.max,
            },
            "histogram": self.histogram,
            "slowest": self.slowest,
        }

    def summary(self) -> str:
        out = (
            f"{self.core}: {self.connections} conns @ {self.rate:.0f} Hz "
            f"— {self.ok} ok / {self.shed} shed / {self.errors} err, "
            f"p50 {self.p50 * 1e3:.1f} ms, p99 {self.p99 * 1e3:.1f} ms, "
            f"p999 {self.p999 * 1e3:.1f} ms"
        )
        if self.slowest:
            # The exemplar: which request paid the max — the first thing
            # an operator greps a flight dump or trace for.
            out += (
                f" (slowest {self.slowest['latency_s'] * 1e3:.1f} ms: "
                f"conn {self.slowest['connection']} "
                f"msgid {self.slowest['msgid']} [{self.slowest['kind']}])"
            )
        return out


def _classify(raw: bytes) -> str:
    """ok / shed / error for one raw response payload."""
    try:
        message = unpack(raw)
    except Exception:
        return "error"
    if not isinstance(message, list) or len(message) < 4 or message[0] != _RESPONSE:
        return "error"
    error = message[2]
    if error is None:
        return "ok"
    if isinstance(error, str) and error.startswith("ServerOverloadedError"):
        return "shed"
    return "error"


def _arrivals(rate: float, duration: float, rng: random.Random) -> list:
    """Poisson arrival offsets (seconds from start) for one connection."""
    out, t = [], 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return out
        out.append(t)


def run_load(
    host: str,
    port: int,
    connections: int = 4,
    rate: float = 50.0,
    duration: float = 2.0,
    method: str = "health",
    params: tuple = (),
    core: str = "mux",
    tenant: str | None = None,
    timeout: float = 30.0,
    seed: int = 1234,
) -> LoadReport:
    """Drive ``connections`` open-loop Poisson streams at ``rate`` req/s each.

    Latency is measured from each request's scheduled arrival, so a
    server (or a blocked socket) that falls behind accumulates queueing
    delay in the numbers instead of silently slowing the generator.
    """
    if core not in ("mux", "legacy"):
        raise RPCError(f"unknown loadgen core {core!r} (want mux|legacy)")
    rng = random.Random(seed)
    plans = [_arrivals(rate, duration, rng) for _ in range(connections)]

    lock = threading.Lock()
    latencies: list = []
    counts = {"ok": 0, "shed": 0, "errors": 0}
    slowest: dict = {}

    def record(kind: str, latency: float, conn: int = -1,
               msgid: int = -1) -> None:
        with lock:
            counts[kind] += 1
            latencies.append(latency)
            if not slowest or latency > slowest["latency_s"]:
                slowest.update({
                    "latency_s": latency, "connection": conn,
                    "msgid": msgid, "kind": kind,
                })

    start_barrier = threading.Barrier(connections + 1)
    clock = time.monotonic

    def frame(msgid: int) -> bytes:
        msg = [_REQUEST, msgid, method, list(params)]
        if tenant:
            msg.append({"tenant": tenant})
        return pack(msg)

    def run_mux(conn: int, plan: list) -> None:
        from repro.rpc.mux import MuxTransport

        # Lazy dial: construction cannot fail, so the start barrier is
        # always reached and dial errors surface per-request instead.
        transport = MuxTransport(host, port, timeout=timeout, lazy=True)
        inflight = []
        try:
            start_barrier.wait()
            t0 = clock()
            for i, offset in enumerate(plan):
                delay = t0 + offset - clock()
                if delay > 0:
                    time.sleep(delay)
                scheduled = t0 + offset

                def done(fut, scheduled=scheduled, msgid=i + 1):
                    latency = clock() - scheduled
                    exc = fut.exception()
                    if exc is not None:
                        kind = ("shed" if isinstance(exc, ServerOverloadedError)
                                else "errors")
                        record(kind, latency, conn, msgid)
                        return
                    kind = _classify(fut.result())
                    record("errors" if kind == "error" else
                           ("shed" if kind == "shed" else "ok"),
                           latency, conn, msgid)

                try:
                    fut = transport.submit(frame(i + 1))
                except Exception:
                    record("errors", clock() - scheduled, conn, i + 1)
                    continue
                fut.add_done_callback(done)
                inflight.append(fut)
            deadline = clock() + timeout
            for fut in inflight:
                left = max(0.0, deadline - clock())
                try:
                    fut.exception(timeout=left)
                except Exception:
                    # Timed-out futures were never recorded by the
                    # callback; count them so sent == len(plan).
                    record("errors", clock() - t0)
        finally:
            transport.close()

    def run_legacy(conn: int, plan: list) -> None:
        from repro.rpc.transport import TCPTransport

        transport = TCPTransport(host, port, timeout=timeout, lazy=True)
        try:
            start_barrier.wait()
            t0 = clock()
            for i, offset in enumerate(plan):
                delay = t0 + offset - clock()
                if delay > 0:
                    time.sleep(delay)
                scheduled = t0 + offset
                try:
                    raw = transport.request(frame(i + 1))
                except ServerOverloadedError:
                    record("shed", clock() - scheduled, conn, i + 1)
                    continue
                except Exception:
                    # Dial refused / reset mid-call: error this request
                    # and re-dial for the next one — a refused connection
                    # must show up as failed arrivals, not a silent stop.
                    record("errors", clock() - scheduled, conn, i + 1)
                    try:
                        transport.reconnect()
                    except Exception:
                        pass
                    continue
                kind = _classify(raw)
                record("errors" if kind == "error" else
                       ("shed" if kind == "shed" else "ok"),
                       clock() - scheduled, conn, i + 1)
        finally:
            try:
                transport.close()
            except Exception:
                pass

    runner = run_mux if core == "mux" else run_legacy
    threads = [
        threading.Thread(target=runner, args=(i, plan), daemon=True,
                         name=f"loadgen-{i}")
        for i, plan in enumerate(plans)
    ]
    for t in threads:
        t.start()
    start_barrier.wait()
    wall0 = clock()
    for t in threads:
        t.join(timeout=duration + timeout + 10.0)
    wall = clock() - wall0

    shed = counts["shed"]
    return LoadReport(
        core=core, connections=connections, rate=rate, duration=duration,
        latencies=latencies, ok=counts["ok"], shed=shed,
        errors=counts["errors"], wall=wall,
        slowest=slowest or None,
    )
