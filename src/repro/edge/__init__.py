"""Edge cache tier: a WAN-side caching facade over the NDP protocol.

See :mod:`repro.edge.server` for the server and
:mod:`repro.edge.coherence` for the version-token coherence protocol.
"""

from repro.edge.coherence import CoherenceTracker
from repro.edge.server import EdgeCacheServer

__all__ = ["CoherenceTracker", "EdgeCacheServer"]
