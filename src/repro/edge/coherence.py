"""Version-token coherence between cache tiers.

The edge cache never uses TTLs: every cached entry is keyed by the
upstream *version token* for its object (store mtime/generation + size)
plus the cluster ``map_version``, so freshness is a property of the key —
a stale entry is simply never looked up again, and ages out of the LRU
tail.  What this module decides is *when the edge learns tokens changed*:

``strict``
    Every serve issues a metadata-only ``object_version`` probe upstream,
    initiated after the client's request arrived.  An overwrite that
    completes before a request is therefore never served stale, at the
    cost of one WAN round trip of latency per request (still no data
    bytes).  This is the default and what the coherence suite asserts.

``watch``
    The tracker remembers the last observed tokens and serves from them;
    an explicit :meth:`poll` (driven by a background thread or the test)
    re-probes every known key.  Staleness is bounded by the poll cadence
    — bounded like the replicated cluster's shard-map watcher, and warm
    requests stay at LAN latency because nothing crosses the WAN.  Tokens
    piggybacked on forwarded replies (``map_version`` stamps) are folded
    in between polls via :meth:`note_map_version`.

Either way an upstream overwrite or rebalance changes the token, the next
lookup misses, and the edge re-fetches — coherent invalidation with zero
TTLs, per Bethel et al.'s network-data-cache design.
"""

from __future__ import annotations

import threading

from repro.errors import ReproError

__all__ = ["CoherenceTracker"]


class CoherenceTracker:
    """Tracks upstream version tokens per object key.

    Parameters
    ----------
    probe:
        ``probe(key) -> (version, map_version)``; raises the upstream's
        typed error when the object is missing or the site is down.
    mode:
        ``"strict"`` or ``"watch"`` (see module docstring).
    counters:
        Optional dict of metric counters; ``revalidations``,
        ``revalidate_hits``, and ``invalidations`` are incremented when
        present.
    """

    MODES = ("strict", "watch")

    def __init__(self, probe, mode: str = "strict", counters: dict | None = None):
        if mode not in self.MODES:
            raise ReproError(
                f"unknown coherence mode {mode!r}; use one of {self.MODES}"
            )
        self._probe = probe
        self.mode = mode
        self._counters = counters or {}
        self._lock = threading.Lock()
        #: key -> (version, map_version), as last observed upstream
        self._known: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        counter = self._counters.get(name)
        if counter is not None:
            counter.inc()

    def _probe_and_record(self, key: str) -> tuple:
        result = self._probe(key)
        self._count("revalidations")
        with self._lock:
            previous = self._known.get(key)
            self._known[key] = result
        if previous is not None:
            if previous != result:
                self._count("invalidations")
            else:
                self._count("revalidate_hits")
        return result

    # ------------------------------------------------------------------
    def revalidate(self, key: str) -> tuple:
        """Current ``(version, map_version)`` for ``key``, per the mode.

        ``strict`` probes upstream now; ``watch`` returns the last
        observed tokens, probing only when the key has never been seen.
        """
        if self.mode == "strict":
            return self._probe_and_record(key)
        with self._lock:
            known = self._known.get(key)
        if known is not None:
            return known
        return self._probe_and_record(key)

    def last_known(self, key: str) -> tuple | None:
        """Most recently observed tokens, without probing (stale-serve path)."""
        with self._lock:
            return self._known.get(key)

    def note_map_version(self, key: str, map_version) -> None:
        """Fold a reply-piggybacked ``map_version`` stamp into the record.

        Pre-filter replies advertise the live map generation even on
        upstream cache hits; in ``watch`` mode this moves invalidation of
        rebalances from the next poll to the next *miss*, for free.
        """
        if map_version is None:
            return
        with self._lock:
            known = self._known.get(key)
            if known is not None and known[1] != map_version:
                self._known[key] = (known[0], map_version)

    def poll(self, keys=None) -> int:
        """Re-probe ``keys`` (default: every known key); returns how many
        tokens changed.  Probe failures leave the old tokens in place —
        a down upstream must not mass-invalidate a still-fresh cache."""
        with self._lock:
            targets = list(keys) if keys is not None else list(self._known)
        changed = 0
        for key in targets:
            with self._lock:
                previous = self._known.get(key)
            try:
                if self._probe_and_record(key) != previous:
                    changed += 1
            except Exception:
                continue
        return changed

    def forget(self, key: str) -> None:
        with self._lock:
            self._known.pop(key, None)

    def known_keys(self) -> list[str]:
        with self._lock:
            return list(self._known)
