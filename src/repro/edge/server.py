"""The edge cache tier: an NDP facade that lives on the client's side of
the WAN.

Clients connect to an :class:`EdgeCacheServer` exactly as they would to a
storage-side :class:`~repro.core.ndp_server.NDPServer` — same msgpack-rpc
protocol, same ``prefilter_*`` / ``stats`` / ``health`` / ``dump``
endpoints, byte-identical encoded replies (CRC included).  Behind that
facade the edge:

* **forwards misses** upstream as *raw frames* (see
  :class:`~repro.rpc.forward.ForwardingHandler`), so a cold request and
  its reply are bit-for-bit what a direct WAN connection would carry —
  tenant/deadline/trace ctx rides through untouched;
* **caches encoded pre-filter replies** in a byte-budgeted single-flight
  LRU keyed by the upstream *store version token* for the object plus the
  cluster ``map_version`` — an overwrite or rebalance upstream changes
  the token and the stale entry is simply never looked up again (zero
  TTLs; see :mod:`repro.edge.coherence` for when tokens are learned);
* **caches decoded array blocks** for objects that prove hot (two reply
  misses for the same block by default) and then computes *new* contours
  locally — a nearby-ROI or new-isovalue request over a cached block
  never crosses the WAN, and the reply mirrors the storage server's
  encode path byte-for-byte;
* **coalesces stampedes**: N concurrent cold clients for one reply cost
  exactly one upstream fetch (the cache's single-flight leader), and the
  N-1 waiters share the decoded result;
* caches **negative replies** (deterministic errors like a missing
  array) under the same version token, while transient conditions
  (overload, timeouts, integrity failures, open breakers) are never
  cached.

Failure ladder when the upstream is unreachable at revalidation time:
with ``serve_stale=True`` the edge serves the last-known-fresh entry (and
counts it); otherwise the client receives the typed transport error line
(``RPCTransportError:`` / ``CircuitOpenError:``), which its
``_raise_remote`` maps back to the real exception type so fallback
policies trigger exactly as on a direct connection.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.compression import get_codec
from repro.core.encoding import attach_checksum, encode_selection, wire_size
from repro.core.prefilter import prefilter_contour
from repro.edge.coherence import CoherenceTracker
from repro.errors import FormatError, RPCError, RPCRemoteError
from repro.grid.array import DataArray
from repro.grid.bounds import Bounds
from repro.grid.rectilinear import RectilinearGrid
from repro.grid.uniform import UniformGrid
from repro.io.vgf import ArrayInfo
from repro.obs.metrics import Registry
from repro.obs.trace import NULL_TRACER
from repro.rpc.client import RPCClient
from repro.rpc.forward import FAILOVER_ERRORS, ForwardingHandler, classify_frame
from repro.rpc.msgpack import pack, unpack
from repro.rpc.server import RPCServer
from repro.storage.cache import ArrayCache, SelectionCache

__all__ = ["EdgeCacheServer"]

_RESPONSE = 1

#: Error-line prefixes that describe a transient condition of the
#: *upstream site*, not of the request: relayed to the asking client but
#: never cached (retrying must be allowed to succeed).
_UNCACHEABLE_ERROR_PREFIXES = (
    "ServerOverloadedError",
    "DeadlineExpiredError",
    "RPCTimeoutError",
    "RPCTransportError",
    "CircuitOpenError",
    "IntegrityError",
)


class _TransientReply(Exception):
    """Loader-internal: an upstream error reply that must not be cached."""

    def __init__(self, line: str):
        super().__init__(line)
        self.line = line


def _params_key(value):
    """Msgpack params as a hashable cache-key component."""
    if isinstance(value, (list, tuple)):
        return tuple(_params_key(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _params_key(v)) for k, v in value.items()))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value)
    return value


class EdgeCacheServer:
    """A caching msgpack-rpc proxy in front of one NDP site or a cluster.

    Parameters
    ----------
    upstreams:
        Transports to the storage-side server(s), in failover order.  May
        be omitted when ``cluster`` is given (the cluster's pool endpoints
        are used).
    cluster:
        Optional :class:`~repro.cluster.shard_client.ClusterClient`; when
        set, ``prefilter_contour`` misses are computed by scatter-gather
        across the shards (and stitched/encoded at the edge) instead of
        forwarded to a single server.
    cache_bytes:
        Byte budget for the decoded-array block cache (``0`` disables the
        local-compute path).
    reply_cache_bytes:
        Byte budget for the encoded-reply cache (``0`` makes the edge a
        pure forwarder).
    coherence:
        ``"strict"`` (revalidate upstream on every serve — never stale) or
        ``"watch"`` (serve from last-known tokens; freshness bounded by
        :meth:`poll` cadence).
    serve_stale:
        When the upstream is unreachable at revalidation, serve the
        last-known-fresh cached entry instead of the transport error.
    promote_after:
        Distinct reply-cache misses for one ``(object, array)`` before the
        edge pulls the block and starts computing contours locally.
    verify_checksums:
        Stamp CRCs on locally computed replies; must match the upstream
        server's setting for byte-identity.
    watch_interval:
        In ``watch`` mode, the background re-probe period in seconds
        (``None`` leaves polling to explicit :meth:`poll` calls).
    """

    #: methods answered from the edge's own state
    LOCAL_METHODS = frozenset({"stats", "health", "server_stats"})
    #: methods whose replies are cacheable under a version token
    CACHEABLE_METHODS = frozenset(
        {"prefilter_contour", "prefilter_threshold", "prefilter_slice"}
    )

    def __init__(
        self,
        upstreams=None,
        *,
        cluster=None,
        cache_bytes: int = 128 * 1024 * 1024,
        reply_cache_bytes: int = 64 * 1024 * 1024,
        coherence: str = "strict",
        serve_stale: bool = False,
        promote_after: int = 2,
        verify_checksums: bool = True,
        tracer=None,
        registry: Registry | None = None,
        testbed=None,
        watch_interval: float | None = None,
    ):
        if upstreams is None and cluster is not None:
            pool = cluster.pool
            upstreams = [pool.transport(i) for i in range(len(pool))]
        if not upstreams:
            raise RPCError("EdgeCacheServer needs at least one upstream")
        self.cluster = cluster
        self.serve_stale = bool(serve_stale)
        self.promote_after = int(promote_after)
        self.verify_checksums = bool(verify_checksums)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else Registry()
        self.testbed = testbed
        self.watch_interval = watch_interval
        self._listener = None
        self._watch_thread = None
        self._watch_stop = threading.Event()

        reg = self.registry
        self._requests = reg.counter(
            "requests", "client requests proxied or served from cache")
        self._latency = reg.histogram(
            "request_latency_seconds", help="edge-observed request latency")
        self._forwards = reg.counter(
            "edge_forwards", "raw frames relayed upstream")
        self._upstream_errors = reg.counter(
            "edge_upstream_errors", "upstream transport failures")
        self._revalidations = reg.counter(
            "edge_revalidations", "version-token probes issued upstream")
        self._revalidate_hits = reg.counter(
            "edge_revalidate_hits", "probes confirming tokens unchanged")
        self._invalidations = reg.counter(
            "edge_invalidations", "probes observing a token change")
        self._negative_hits = reg.counter(
            "edge_negative_hits", "cached error replies served")
        self._stale_served = reg.counter(
            "edge_stale_served", "entries served past a failed revalidation")
        self._local_computes = reg.counter(
            "edge_local_computes", "contours computed from cached blocks")
        self._block_promotions = reg.counter(
            "edge_block_promotions", "array blocks pulled for local compute")

        self.forwarder = ForwardingHandler(
            upstreams,
            tracer=self.tracer,
            via="edge",
            counters={
                "forwards": self._forwards,
                "upstream_errors": self._upstream_errors,
            },
        )
        # One probe client per upstream, sharing the forwarder's
        # transports (each transport serializes request/response pairs
        # under its own lock, so interleaving is safe).
        self._clients = [RPCClient(t) for t in self.forwarder.transports]

        self.coherence = CoherenceTracker(
            self._probe,
            mode=coherence,
            counters={
                "revalidations": self._revalidations,
                "revalidate_hits": self._revalidate_hits,
                "invalidations": self._invalidations,
            },
        )

        self.reply_cache = (
            SelectionCache(reply_cache_bytes, name="edge_reply_cache",
                           tracer=self.tracer)
            if reply_cache_bytes else None
        )
        self.block_cache = (
            ArrayCache(cache_bytes, name="edge_block_cache",
                       tracer=self.tracer)
            if cache_bytes and cluster is None else None
        )
        if self.reply_cache is not None:
            reg.register("reply_cache", self.reply_cache.info)
        if self.block_cache is not None:
            reg.register("block_cache", self.block_cache.info)
        reg.register("edge", self._edge_info)

        #: (key, array) -> distinct reply-miss count, for block promotion
        self._miss_counts: dict[tuple, int] = {}
        self._miss_lock = threading.Lock()
        #: (key, array) pairs the local path proved it cannot serve
        self._local_blacklist: set[tuple] = set()
        #: upstream predates ``object_version`` — run as a pure forwarder
        self._probe_unsupported = False

        self.rpc = RPCServer(
            {
                "stats": self.stats_snapshot,
                "health": self.health,
                "server_stats": self.server_stats,
            },
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # upstream helpers
    # ------------------------------------------------------------------
    def _call_upstream(self, method: str, *params):
        last_error = None
        for client in self._clients:
            try:
                return client.call(method, *params)
            except FAILOVER_ERRORS as exc:
                self._upstream_errors.inc()
                last_error = exc
        raise last_error

    def _probe(self, key: str):
        """Coherence probe: ``(version token, map_version)`` for ``key``."""
        resp = self._call_upstream("object_version", key)
        version = resp.get("version") if isinstance(resp, dict) else None
        if isinstance(version, list):
            version = tuple(version)
        map_version = resp.get("map_version") if isinstance(resp, dict) else None
        return (version, map_version)

    # ------------------------------------------------------------------
    # the dispatcher: every client frame enters here
    # ------------------------------------------------------------------
    def dispatch(self, payload: bytes) -> bytes | None:
        kind, msgid, method, params, ctx, message = classify_frame(payload)
        if kind == "other":
            # Malformed frames get the local server's usual protocol error.
            return self.rpc.dispatch(payload)
        if kind == "notify":
            try:
                return self.forwarder.forward(payload, message)
            except FAILOVER_ERRORS:
                return None
        if method in self.LOCAL_METHODS:
            return self.rpc.dispatch(payload)
        self._requests.inc()
        wall0 = time.perf_counter()
        try:
            if (
                method in self.CACHEABLE_METHODS
                and self.reply_cache is not None
                and not self._probe_unsupported
                and isinstance(params, (list, tuple))
                and params
                and isinstance(params[0], str)
            ):
                out = self._serve_cacheable(payload, message, msgid, method,
                                            params, ctx)
            else:
                out = self.forwarder.forward(payload, message)
        except FAILOVER_ERRORS as exc:
            out = pack([_RESPONSE, msgid,
                        f"{type(exc).__name__}: {exc}", None])
        except Exception as exc:  # never kill the connection thread
            out = pack([_RESPONSE, msgid,
                        f"{type(exc).__name__}: {exc}", None])
        self._latency.observe(time.perf_counter() - wall0)
        return out

    # ------------------------------------------------------------------
    def _serve_cacheable(self, payload, message, msgid, method, params, ctx):
        key = params[0]
        try:
            version, map_version = self.coherence.revalidate(key)
        except FAILOVER_ERRORS:
            stale = self._try_serve_stale(msgid, method, params, ctx)
            if stale is not None:
                return stale
            raise
        except RPCRemoteError as exc:
            line = exc.remote_message
            if "no such method" in line:
                # Upstream predates the coherence protocol: caching would
                # risk staleness, so degrade to a pure forwarder.
                self._probe_unsupported = True
                return self.forwarder.forward(payload, message)
            # Missing object / degraded store: the probe's error line *is*
            # the version — deterministic errors become negative entries
            # keyed by it, and recovery changes the line or the token.
            version, map_version = ("probe-error", line), None

        cache_key = (method, _params_key(params), version, map_version)
        raw_box: list = []

        def load():
            local = self._compute_locally(method, params, key, version,
                                          map_version)
            if local is not None:
                return ("ok", local)
            raw = self.forwarder.forward(payload, message)
            try:
                response = unpack(raw)
            except Exception:
                raise RPCError("upstream returned an undecodable frame")
            if (
                not isinstance(response, list)
                or len(response) not in (4, 5)
                or response[0] != _RESPONSE
            ):
                raise RPCError("upstream returned a non-response frame")
            raw_box.append(raw)
            error, result = response[2], response[3]
            if error is None:
                if isinstance(result, dict):
                    self.coherence.note_map_version(
                        key, result.get("map_version"))
                return ("ok", result)
            line = str(error).splitlines()[0] if str(error) else str(error)
            if line.startswith(_UNCACHEABLE_ERROR_PREFIXES):
                raise _TransientReply(str(error))
            return ("err", str(error))

        try:
            status, value = self.reply_cache.get_or_load(cache_key, load)
        except _TransientReply as exc:
            if raw_box:
                return raw_box[0]
            return pack([_RESPONSE, msgid, exc.line, None])
        if raw_box:
            # Leader with fresh upstream bytes: relay them verbatim, so a
            # cold request is byte-identical to a direct connection
            # (msgid, spans, everything).
            return raw_box[0]
        if status == "err":
            self._negative_hits.inc()
            return self._pack_reply(msgid, value, None, ctx, cache="negative")
        return self._pack_reply(msgid, None, value, ctx, cache="hit")

    def _pack_reply(self, msgid, error, result, ctx, cache: str):
        """Pack a cache-served reply, grafting a ``via``-tagged span when
        the request was traced (mirrors the forwarder's reply shape)."""
        traced = (
            bool(self.tracer)
            and isinstance(ctx, dict)
            and ctx.get("trace_id") is not None
        )
        if traced:
            with self.tracer.activate(ctx, "edge.serve", via="edge",
                                      cache=cache) as span:
                pass
            span_dict = getattr(span, "to_dict", lambda: None)()
            if span_dict is not None:
                return pack([_RESPONSE, msgid, error, result, [span_dict]])
        return pack([_RESPONSE, msgid, error, result])

    def _try_serve_stale(self, msgid, method, params, ctx):
        """Failure-ladder rung: upstream down, serve last-known-fresh."""
        if not self.serve_stale:
            return None
        known = self.coherence.last_known(params[0])
        if known is None or self.reply_cache is None:
            return None
        entry = self.reply_cache.peek(
            (method, _params_key(params), known[0], known[1]))
        if entry is None or entry[0] != "ok":
            return None
        self._stale_served.inc()
        return self._pack_reply(msgid, None, entry[1], ctx, cache="stale")

    # ------------------------------------------------------------------
    # local compute over cached blocks
    # ------------------------------------------------------------------
    def _compute_locally(self, method, params, key, version, map_version):
        """An encoded reply computed at the edge, or ``None`` to forward.

        Single-server mode pulls hot blocks and mirrors the storage
        server's contour path byte-for-byte; cluster mode scatter-gathers
        the shards and stitches/encodes here.  Any condition the local
        path cannot honour (non-point arrays, unknown modes, parse
        surprises) falls back to forwarding.
        """
        if method != "prefilter_contour":
            return None
        try:
            _, array, values = params[0], params[1], params[2]
            mode = params[3] if len(params) > 3 else "cell-closure"
            encoding = params[4] if len(params) > 4 else "auto"
            wire_codec = params[5] if len(params) > 5 else "lz4"
            roi = params[6] if len(params) > 6 else None
        except (IndexError, TypeError):
            return None
        if self.cluster is not None:
            return self._cluster_compute(array, values, mode, encoding,
                                         wire_codec, roi, map_version)
        if self.block_cache is None:
            return None
        if not isinstance(version, tuple) or version[:1] == ("probe-error",):
            return None
        if (key, array) in self._local_blacklist:
            return None
        block_key = (key, array, version)
        pair = self.block_cache.peek(block_key)
        if pair is None:
            if not self._should_promote(key, array):
                return None
            try:
                pair = self.block_cache.get_or_load(
                    block_key, lambda: self._fetch_block(key, array))
            except FAILOVER_ERRORS:
                raise
            except Exception:
                # Block fetch/decoding failed for a reason the upstream
                # may still handle (e.g. exotic codec): forward instead.
                return None
        grid, entry = pair
        if entry.association != "point" or entry.components != 1:
            self._local_blacklist.add((key, array))
            return None
        try:
            with self.tracer.span("edge.compute", key=key, array=array):
                if self.testbed is not None:
                    self.testbed.charge_filter_scan(entry.raw_bytes)
                bounds = (
                    Bounds(*(float(v) for v in roi)) if roi is not None
                    else None
                )
                selection = prefilter_contour(grid, array, values, mode=mode,
                                              roi=bounds)
                encoded = encode_selection(selection, method=encoding,
                                           payload_codec=wire_codec)
                if self.testbed is not None and wire_codec != "raw":
                    self.testbed.charge_compress(
                        wire_codec, selection.payload_nbytes)
        except FAILOVER_ERRORS:
            raise
        except Exception:
            self._local_blacklist.add((key, array))
            return None
        encoded["stats"] = {
            "stored_bytes": entry.stored_bytes,
            "raw_bytes": entry.raw_bytes,
            "codec": entry.codec,
            "selected_points": int(selection.count),
            "total_points": int(selection.total_points),
            "wire_bytes": wire_size(encoded),
        }
        if self.verify_checksums:
            encoded = attach_checksum(encoded)
        if map_version is not None:
            encoded["map_version"] = map_version
        self._local_computes.inc()
        return encoded

    def _should_promote(self, key: str, array: str) -> bool:
        with self._miss_lock:
            if len(self._miss_counts) > 4096:
                self._miss_counts.clear()
            count = self._miss_counts.get((key, array), 0) + 1
            self._miss_counts[(key, array)] = count
        return count >= self.promote_after

    def _fetch_block(self, key: str, array: str):
        """Pull one stored block upstream and decode it exactly as
        :func:`repro.io.vgf.read_vgf_array` would locally."""
        resp = self._call_upstream("read_block", key, array)
        arr = resp["array"]
        stored = resp["stored"]
        payload = get_codec(arr["codec"]).decompress(bytes(stored))
        if len(payload) != arr["raw_bytes"]:
            raise FormatError(
                f"array {array!r}: decompressed to {len(payload)} bytes, "
                f"header says {arr['raw_bytes']}"
            )
        if self.testbed is not None:
            self.testbed.charge_decompress(arr["codec"], arr["raw_bytes"])
        values = np.frombuffer(payload, dtype=np.dtype(arr["dtype"]))
        if resp.get("axes"):
            axes = [np.frombuffer(bytes(b), dtype=np.float64)
                    for b in resp["axes"]]
            grid = RectilinearGrid(*axes)
        else:
            grid = UniformGrid(tuple(resp["dims"]), tuple(resp["origin"]),
                               tuple(resp["spacing"]))
        entry = ArrayInfo(
            name=arr["name"], dtype=arr["dtype"],
            components=arr["components"], association=arr["association"],
            codec=arr["codec"], offset=0,
            stored_bytes=arr["stored_bytes"], raw_bytes=arr["raw_bytes"],
        )
        data = DataArray(entry.name, values, components=entry.components)
        if entry.association == "point":
            grid.point_data.add(data)
        else:
            grid.cell_data.add(data)
        self._block_promotions.inc()
        return grid, entry

    def _cluster_compute(self, array, values, mode, encoding, wire_codec,
                         roi, map_version):
        """Scatter-gather across the shards, stitch and encode here."""
        if mode != getattr(self.cluster, "mode", mode):
            return None  # shards would compute a different selection
        try:
            bounds = (
                Bounds(*(float(v) for v in roi)) if roi is not None else None
            )
            selection, stats = self.cluster.prefilter(array, values,
                                                      roi=bounds)
            encoded = encode_selection(selection, method=encoding,
                                       payload_codec=wire_codec)
        except FAILOVER_ERRORS:
            raise
        except Exception:
            return None
        encoded["stats"] = {
            "stored_bytes": int(stats.get("stored_bytes", 0)),
            "raw_bytes": int(stats.get("raw_bytes", 0)),
            "codec": "cluster",
            "selected_points": int(selection.count),
            "total_points": int(selection.total_points),
            "wire_bytes": wire_size(encoded),
        }
        if self.verify_checksums:
            encoded = attach_checksum(encoded)
        # The probe saw the live shard-map generation; the cluster
        # client's stats may still carry the manifest's cached one.
        live = map_version if map_version is not None \
            else stats.get("map_version")
        if live is not None:
            encoded["map_version"] = live
        self._local_computes.inc()
        return encoded

    # ------------------------------------------------------------------
    # local endpoints
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The ``stats`` RPC endpoint: the edge's own registry snapshot."""
        return self.registry.snapshot()

    def server_stats(self) -> dict:
        out = {"kind": "edge", "requests": int(self._requests.value)}
        out.update(self._edge_info())
        return out

    def _edge_info(self) -> dict:
        reply = (self.reply_cache.info() if self.reply_cache is not None
                 else {"enabled": False})
        block = (self.block_cache.info() if self.block_cache is not None
                 else {"enabled": False})
        hits = int(reply.get("hits", 0))
        misses = int(reply.get("misses", 0))
        total = hits + misses
        return {
            "kind": "edge",
            "upstreams": len(self.forwarder.transports),
            "cluster": self.cluster is not None,
            "coherence": self.coherence.mode,
            "serve_stale": self.serve_stale,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
            "coalesced": int(reply.get("coalesced", 0)),
            "revalidations": int(self._revalidations.value),
            "revalidate_hits": int(self._revalidate_hits.value),
            "invalidations": int(self._invalidations.value),
            "negative_hits": int(self._negative_hits.value),
            "stale_served": int(self._stale_served.value),
            "upstream_errors": int(self._upstream_errors.value),
            "forwards": int(self._forwards.value),
            "local_computes": int(self._local_computes.value),
            "block_promotions": int(self._block_promotions.value),
            "reply_cache": reply,
            "block_cache": block,
        }

    def health(self) -> dict:
        """Edge liveness plus one-hop upstream reachability."""
        out = {
            "status": "ok",
            "kind": "edge",
            "draining": bool(getattr(self._listener, "draining", False)),
            "requests_served": int(self._requests.value),
        }
        try:
            upstream = self._call_upstream("health")
            out["upstream_reachable"] = True
            if isinstance(upstream, dict):
                out["upstream_status"] = upstream.get("status")
                if upstream.get("map_version") is not None:
                    out["map_version"] = upstream["map_version"]
        except Exception as exc:
            out["upstream_reachable"] = False
            out["upstream_error"] = f"{type(exc).__name__}: {exc}"
            out["status"] = "degraded"
        out["edge"] = self._edge_info()
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def poll(self, keys=None) -> int:
        """Re-probe known version tokens (the ``watch`` mode heartbeat)."""
        return self.coherence.poll(keys)

    def start_watch(self, interval: float | None = None) -> None:
        """Start the background re-probe loop (``watch`` mode only)."""
        interval = interval if interval is not None else self.watch_interval
        if not interval or self._watch_thread is not None:
            return
        self._watch_stop.clear()

        def run():
            while not self._watch_stop.wait(interval):
                try:
                    self.coherence.poll()
                except Exception:
                    continue

        self._watch_thread = threading.Thread(
            target=run, name="edge-coherence-watch", daemon=True)
        self._watch_thread.start()

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0,
                  max_connections: int | None = None):
        """Listen on TCP; returns the started listener (``.port`` is the
        bound port when ``port=0``)."""
        from repro.rpc.transport import TCPServerTransport

        self._listener = TCPServerTransport(
            self.dispatch, host=host, port=port,
            max_connections=max_connections,
        ).start()
        if self.coherence.mode == "watch" and self.watch_interval:
            self.start_watch()
        return self._listener

    def close(self) -> None:
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=1.0)
            self._watch_thread = None
        if self._listener is not None:
            self._listener.stop()
            self._listener = None
