"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GridError",
    "PipelineError",
    "PortError",
    "FilterError",
    "FormatError",
    "CodecError",
    "RPCError",
    "RPCRemoteError",
    "RPCTransportError",
    "StorageError",
    "NoSuchObjectError",
    "NoSuchBucketError",
    "SelectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridError(ReproError):
    """Invalid grid construction or incompatible grid operation."""


class PipelineError(ReproError):
    """Pipeline construction or execution failure."""


class PortError(PipelineError):
    """Invalid port index or connection."""


class FilterError(PipelineError):
    """A filter received input it cannot process."""


class FormatError(ReproError):
    """Malformed file or wire payload."""


class CodecError(ReproError):
    """Compression or decompression failure."""


class RPCError(ReproError):
    """Base class for RPC-layer failures."""


class RPCRemoteError(RPCError):
    """The remote handler raised; carries the remote traceback text."""

    def __init__(self, method: str, remote_message: str):
        super().__init__(f"remote call {method!r} failed: {remote_message}")
        self.method = method
        self.remote_message = remote_message


class RPCTransportError(RPCError):
    """The transport failed (connection refused, truncated frame, ...)."""


class StorageError(ReproError):
    """Object-store failure."""


class NoSuchBucketError(StorageError):
    """The requested bucket does not exist."""


class NoSuchObjectError(StorageError):
    """The requested object does not exist."""


class SelectionError(ReproError):
    """Invalid sparse point selection."""
