"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GridError",
    "PipelineError",
    "PortError",
    "FilterError",
    "FormatError",
    "CodecError",
    "IntegrityError",
    "RPCError",
    "RPCRemoteError",
    "RPCTransportError",
    "RPCTimeoutError",
    "DeadlineExpiredError",
    "ServerOverloadedError",
    "CircuitOpenError",
    "StorageError",
    "NoSuchObjectError",
    "NoSuchBucketError",
    "SelectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridError(ReproError):
    """Invalid grid construction or incompatible grid operation."""


class PipelineError(ReproError):
    """Pipeline construction or execution failure."""


class PortError(PipelineError):
    """Invalid port index or connection."""


class FilterError(PipelineError):
    """A filter received input it cannot process."""


class FormatError(ReproError):
    """Malformed file or wire payload."""


class IntegrityError(FormatError):
    """A checksum did not match: the bytes were corrupted at rest or in flight.

    Subclasses :class:`FormatError` because corrupted data *is* a malformed
    payload — existing ``except FormatError`` handlers keep rejecting it —
    but the distinct type lets recovery code react specifically: the NDP
    client re-reads once (corruption is often transient) and then degrades
    to the baseline path instead of ever emitting wrong geometry.
    """


class CodecError(ReproError):
    """Compression or decompression failure."""


class RPCError(ReproError):
    """Base class for RPC-layer failures."""


class RPCRemoteError(RPCError):
    """The remote handler raised; carries the remote traceback text."""

    def __init__(self, method: str, remote_message: str):
        super().__init__(f"remote call {method!r} failed: {remote_message}")
        self.method = method
        self.remote_message = remote_message


class RPCTransportError(RPCError):
    """The transport failed (connection refused, truncated frame, ...)."""


class RPCTimeoutError(RPCTransportError):
    """A request exceeded its deadline (socket timeout or retry budget).

    Subclasses :class:`RPCTransportError` because a timeout is a transport
    failure: existing ``except RPCTransportError`` handlers keep working,
    and the resilient transport treats it as retryable when budget remains.
    """


class DeadlineExpiredError(RPCTimeoutError):
    """The request's propagated deadline expired before the work finished.

    Raised server-side (the request arrived already expired, or its budget
    ran out between processing phases) and mapped back to this type on the
    client.  Subclasses :class:`RPCTimeoutError`: to every existing
    handler a blown deadline is just another timeout.
    """


class ServerOverloadedError(RPCTransportError):
    """The server shed this request at admission instead of queueing it.

    Subclasses :class:`RPCTransportError` because overload is transient by
    definition: the resilient transport retries it with backoff (honouring
    :attr:`retry_after` as a floor) and :class:`FallbackPolicy` may degrade
    on it — exactly the treatment a flaky link gets.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(RPCError):
    """The circuit breaker is open: the request was rejected locally.

    Deliberately *not* a :class:`RPCTransportError` — nothing touched the
    wire.  Carries the failure count and the simulated/real time until the
    breaker will probe again, when known.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class StorageError(ReproError):
    """Object-store failure."""


class NoSuchBucketError(StorageError):
    """The requested bucket does not exist."""


class NoSuchObjectError(StorageError):
    """The requested object does not exist."""


class SelectionError(ReproError):
    """Invalid sparse point selection."""
