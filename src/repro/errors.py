"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GridError",
    "PipelineError",
    "PortError",
    "FilterError",
    "FormatError",
    "CodecError",
    "RPCError",
    "RPCRemoteError",
    "RPCTransportError",
    "RPCTimeoutError",
    "CircuitOpenError",
    "StorageError",
    "NoSuchObjectError",
    "NoSuchBucketError",
    "SelectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridError(ReproError):
    """Invalid grid construction or incompatible grid operation."""


class PipelineError(ReproError):
    """Pipeline construction or execution failure."""


class PortError(PipelineError):
    """Invalid port index or connection."""


class FilterError(PipelineError):
    """A filter received input it cannot process."""


class FormatError(ReproError):
    """Malformed file or wire payload."""


class CodecError(ReproError):
    """Compression or decompression failure."""


class RPCError(ReproError):
    """Base class for RPC-layer failures."""


class RPCRemoteError(RPCError):
    """The remote handler raised; carries the remote traceback text."""

    def __init__(self, method: str, remote_message: str):
        super().__init__(f"remote call {method!r} failed: {remote_message}")
        self.method = method
        self.remote_message = remote_message


class RPCTransportError(RPCError):
    """The transport failed (connection refused, truncated frame, ...)."""


class RPCTimeoutError(RPCTransportError):
    """A request exceeded its deadline (socket timeout or retry budget).

    Subclasses :class:`RPCTransportError` because a timeout is a transport
    failure: existing ``except RPCTransportError`` handlers keep working,
    and the resilient transport treats it as retryable when budget remains.
    """


class CircuitOpenError(RPCError):
    """The circuit breaker is open: the request was rejected locally.

    Deliberately *not* a :class:`RPCTransportError` — nothing touched the
    wire.  Carries the failure count and the simulated/real time until the
    breaker will probe again, when known.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class StorageError(ReproError):
    """Object-store failure."""


class NoSuchBucketError(StorageError):
    """The requested bucket does not exist."""


class NoSuchObjectError(StorageError):
    """The requested object does not exist."""


class SelectionError(ReproError):
    """Invalid sparse point selection."""
