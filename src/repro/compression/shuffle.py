"""Byte-shuffle preconditioning codec (HDF5's shuffle filter).

Float arrays from simulations vary smoothly, so the *high* bytes of
adjacent values are nearly constant while the low (mantissa) bytes look
random.  Transposing the byte planes — all first-bytes together, then all
second-bytes, ... — turns that structure into long runs that LZ-family
codecs exploit.  This is exactly HDF5's ``shuffle`` filter; VTK users get
it implicitly when simulations write shuffled HDF5.

The codec wraps any registered inner codec:

``b"SHFL" | uint8 itemsize | uint8 tail_len | tail bytes | inner frame``

Values whose byte count is not a multiple of ``itemsize`` keep their
remainder unshuffled in the header ("tail").
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, get_codec, register_codec
from repro.errors import CodecError

__all__ = ["ShuffleCodec"]

_MAGIC = b"SHFL"


class ShuffleCodec(Codec):
    """Byte-plane transpose followed by an inner codec.

    Parameters
    ----------
    inner:
        Name of the registered codec applied after shuffling.
    itemsize:
        Width of the values being shuffled (4 for float32).
    """

    def __init__(self, inner: str = "lz4", itemsize: int = 4):
        if itemsize < 2 or itemsize > 255:
            raise CodecError(f"itemsize must be in [2, 255], got {itemsize}")
        self.inner_name = inner
        self.itemsize = itemsize
        self.name = f"shuffle-{inner}"

    def _inner(self) -> Codec:
        return get_codec(self.inner_name)

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        n_items = len(data) // self.itemsize
        body_len = n_items * self.itemsize
        tail = data[body_len:]
        arr = np.frombuffer(data, dtype=np.uint8, count=body_len)
        shuffled = np.ascontiguousarray(
            arr.reshape(n_items, self.itemsize).T
        ).tobytes()
        inner_frame = self._inner().compress(shuffled)
        return (
            _MAGIC
            + bytes([self.itemsize, len(tail)])
            + tail
            + inner_frame
        )

    def decompress(self, data: bytes) -> bytes:
        data = bytes(data)
        if len(data) < 6 or data[:4] != _MAGIC:
            raise CodecError("bad shuffle frame")
        itemsize = data[4]
        tail_len = data[5]
        if itemsize != self.itemsize:
            raise CodecError(
                f"frame shuffled with itemsize {itemsize}; codec expects "
                f"{self.itemsize}"
            )
        tail = data[6 : 6 + tail_len]
        shuffled = self._inner().decompress(data[6 + tail_len :])
        if len(shuffled) % itemsize:
            raise CodecError("shuffled payload length not a multiple of itemsize")
        n_items = len(shuffled) // itemsize
        arr = np.frombuffer(shuffled, dtype=np.uint8)
        body = np.ascontiguousarray(arr.reshape(itemsize, n_items).T).tobytes()
        return body + tail


register_codec(ShuffleCodec("lz4"))
register_codec(ShuffleCodec("gzip"))
