"""GZip codec over stdlib zlib.

zlib with ``wbits=31`` produces/consumes the gzip container format, i.e.
this is byte-compatible with what VTK's GZip-compressed data files hold.
"""

from __future__ import annotations

import zlib

from repro.compression.base import Codec, register_codec
from repro.errors import CodecError

__all__ = ["GzipCodec"]

_GZIP_WBITS = 31  # gzip container


class GzipCodec(Codec):
    """Deflate compression in the gzip container.

    Parameters
    ----------
    level:
        zlib compression level 1..9; the default 6 matches VTK's default.
    """

    name = "gzip"

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CodecError(f"gzip level must be 1..9, got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        # zlib consumes any contiguous buffer: no bytes() copy needed.
        co = zlib.compressobj(self.level, zlib.DEFLATED, _GZIP_WBITS)
        return co.compress(data) + co.flush()

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data, wbits=_GZIP_WBITS)
        except zlib.error as exc:
            raise CodecError(f"gzip decompression failed: {exc}") from exc

    def iter_decompress(self, data, chunk_bytes: int = 1 << 22):
        """True streaming decode: at most ``chunk_bytes`` decoded at once."""
        do = zlib.decompressobj(wbits=_GZIP_WBITS)
        tail = bytes(data)
        try:
            while tail:
                out = do.decompress(tail, chunk_bytes)
                tail = do.unconsumed_tail
                if out:
                    yield out
            out = do.flush()
        except zlib.error as exc:
            raise CodecError(f"gzip decompression failed: {exc}") from exc
        if out:
            yield out


register_codec(GzipCodec())
