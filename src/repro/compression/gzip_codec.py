"""GZip codec over stdlib zlib.

zlib with ``wbits=31`` produces/consumes the gzip container format, i.e.
this is byte-compatible with what VTK's GZip-compressed data files hold.
"""

from __future__ import annotations

import zlib

from repro.compression.base import Codec, register_codec
from repro.errors import CodecError

__all__ = ["GzipCodec"]

_GZIP_WBITS = 31  # gzip container


class GzipCodec(Codec):
    """Deflate compression in the gzip container.

    Parameters
    ----------
    level:
        zlib compression level 1..9; the default 6 matches VTK's default.
    """

    name = "gzip"

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CodecError(f"gzip level must be 1..9, got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        co = zlib.compressobj(self.level, zlib.DEFLATED, _GZIP_WBITS)
        return co.compress(bytes(data)) + co.flush()

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(bytes(data), wbits=_GZIP_WBITS)
        except zlib.error as exc:
            raise CodecError(f"gzip decompression failed: {exc}") from exc


register_codec(GzipCodec())
