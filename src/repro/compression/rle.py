"""Byte run-length codec.

Not part of the paper's evaluation; used by the ablation benchmarks as a
cheap lower bound on what "any compression at all" buys on
material-fraction arrays, which are dominated by long constant runs early
in a simulation.

Format: repeating ``(count: uint8 >= 1, value: uint8)`` pairs.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, register_codec
from repro.errors import CodecError

__all__ = ["RLECodec"]


class RLECodec(Codec):
    """Run-length coding of raw bytes, vectorized with NumPy."""

    name = "rle"

    def compress(self, data: bytes) -> bytes:
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
        if arr.size == 0:
            return b""
        # Run boundaries: positions where the byte changes.
        change = np.nonzero(np.diff(arr))[0] + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [arr.size]))
        lengths = ends - starts
        values = arr[starts]
        # Split runs longer than 255 into ceil(len/255) chunks.
        n_chunks = (lengths + 254) // 255
        total = int(n_chunks.sum())
        out = np.empty((total, 2), dtype=np.uint8)
        rep_values = np.repeat(values, n_chunks)
        counts = np.full(total, 255, dtype=np.int64)
        # The final chunk of each run carries the remainder.
        last_idx = np.cumsum(n_chunks) - 1
        remainder = lengths - (n_chunks - 1) * 255
        counts[last_idx] = remainder
        out[:, 0] = counts.astype(np.uint8)
        out[:, 1] = rep_values
        return out.tobytes()

    def decompress(self, data: bytes) -> bytes:
        raw = np.frombuffer(bytes(data), dtype=np.uint8)
        if raw.size == 0:
            return b""
        if raw.size % 2:
            raise CodecError("RLE payload must be (count, value) pairs")
        pairs = raw.reshape(-1, 2)
        counts = pairs[:, 0].astype(np.int64)
        if (counts == 0).any():
            raise CodecError("RLE count of zero is invalid")
        return np.repeat(pairs[:, 1], counts).tobytes()


register_codec(RLECodec())
