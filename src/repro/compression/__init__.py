"""Compression substrate: the codecs the paper evaluates, plus extensions.

The paper evaluates GZip and LZ4 because "they are natively supported by
the VTK library" (Sec. VIII).  This package provides both — GZip via
stdlib zlib (which *is* the gzip algorithm) and LZ4 as a from-scratch,
bitstream-compatible block-format implementation — behind a uniform
:class:`~repro.compression.base.Codec` interface with a name registry, so
readers/writers and the NDP server can be configured with a codec string
exactly like VTK data files are.

Extensions beyond the paper's evaluation:

* :class:`~repro.compression.rle.RLECodec` — byte run-length coding, used
  by the encoding ablation;
* :class:`~repro.compression.lossy.QuantizerCodec` — an error-bounded
  lossy float codec in the spirit of the paper's "future work" discussion
  of SZ/ZFP-style compressors.
"""

from repro.compression.base import Codec, available_codecs, get_codec, register_codec
from repro.compression.gzip_codec import GzipCodec
from repro.compression.lossy import QuantizerCodec
from repro.compression.lz4 import lz4_compress_block, lz4_decompress_block
from repro.compression.lz4_codec import LZ4Codec
from repro.compression.null_codec import NullCodec
from repro.compression.rle import RLECodec
from repro.compression.shuffle import ShuffleCodec

__all__ = [
    "Codec",
    "get_codec",
    "register_codec",
    "available_codecs",
    "NullCodec",
    "GzipCodec",
    "LZ4Codec",
    "RLECodec",
    "ShuffleCodec",
    "QuantizerCodec",
    "lz4_compress_block",
    "lz4_decompress_block",
]
