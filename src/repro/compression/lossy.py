"""Error-bounded lossy float codec (the paper's "future work" direction).

The paper anticipates that "highly optimized floating-point data
compressors could achieve higher compression ratios" on the Nyx dataset
(Sec. VII) but leaves them to future work.  :class:`QuantizerCodec` is a
minimal member of that family: SZ-style absolute-error-bounded uniform
quantization followed by deflate entropy coding.

Encoding of a float32 payload:

1. quantize each value to ``q = round(x / (2 * abs_bound))`` (int64 bins),
2. delta-encode the bin indices (scientific fields are smooth, so deltas
   concentrate near zero),
3. zig-zag map deltas to unsigned and pack to the narrowest of
   uint8/uint16/uint32/uint64,
4. deflate the packed stream.

Decoding inverts the chain; every reconstructed value satisfies
``|x' - x| <= abs_bound`` in exact arithmetic (storing the reconstruction
back to float32 can add up to one ulp on top).  Non-finite inputs are
rejected.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.compression.base import Codec, register_codec
from repro.errors import CodecError

__all__ = ["QuantizerCodec"]

_MAGIC = b"QNTZ"
_HEADER = struct.Struct("<4sdBQ")  # magic, abs_bound, width code, count
_WIDTHS = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _zigzag(v: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned: 0,-1,1,-2,... -> 0,1,2,3,..."""
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    v = u.astype(np.int64)
    return (v >> 1) ^ -(v & 1)


class QuantizerCodec(Codec):
    """Absolute-error-bounded quantizer for float32 payloads.

    Parameters
    ----------
    abs_bound:
        Maximum absolute reconstruction error, > 0.
    level:
        Deflate level for the entropy-coding stage.
    """

    name = "quantizer"
    lossless = False

    def __init__(self, abs_bound: float = 1e-3, level: int = 6):
        if not (abs_bound > 0 and np.isfinite(abs_bound)):
            raise CodecError(f"abs_bound must be finite and > 0, got {abs_bound}")
        self.abs_bound = float(abs_bound)
        self.level = level

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        if len(data) % 4:
            raise CodecError("quantizer expects a float32 payload")
        x = np.frombuffer(data, dtype=np.float32).astype(np.float64)
        if x.size and not np.isfinite(x).all():
            raise CodecError("quantizer cannot encode non-finite values")
        step = 2.0 * self.abs_bound
        q = np.round(x / step).astype(np.int64)
        deltas = np.empty_like(q)
        if q.size:
            deltas[0] = q[0]
            np.subtract(q[1:], q[:-1], out=deltas[1:])
        zz = _zigzag(deltas)
        width = 1
        if zz.size:
            peak = int(zz.max())
            for w in (1, 2, 4, 8):
                if peak < (1 << (8 * w)):
                    width = w
                    break
        packed = zz.astype(_WIDTHS[width]).tobytes()
        body = zlib.compress(packed, self.level)
        return _HEADER.pack(_MAGIC, self.abs_bound, width, x.size) + body

    def decompress(self, data: bytes) -> bytes:
        data = bytes(data)
        if len(data) < _HEADER.size:
            raise CodecError("quantizer frame too short")
        magic, abs_bound, width, count = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CodecError(f"bad quantizer magic {magic!r}")
        if width not in _WIDTHS:
            raise CodecError(f"bad quantizer width code {width}")
        try:
            packed = zlib.decompress(data[_HEADER.size :])
        except zlib.error as exc:
            raise CodecError(f"quantizer entropy stage failed: {exc}") from exc
        zz = np.frombuffer(packed, dtype=_WIDTHS[width]).astype(np.uint64)
        if zz.size != count:
            raise CodecError(
                f"quantizer frame declared {count} values but holds {zz.size}"
            )
        deltas = _unzigzag(zz)
        q = np.cumsum(deltas)
        x = q.astype(np.float64) * (2.0 * abs_bound)
        return x.astype(np.float32).tobytes()


register_codec(QuantizerCodec())
