"""Codec interface and registry.

A codec maps ``bytes -> bytes`` in both directions.  Codecs register under
a short name (``"raw"``, ``"gzip"``, ``"lz4"``, ...) so file formats and
RPC payloads can record which codec produced a block.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import CodecError

__all__ = ["Codec", "register_codec", "get_codec", "available_codecs"]


class Codec(ABC):
    """Abstract byte-stream codec.

    Attributes
    ----------
    name:
        Registry name; also stored in file/wire headers.
    lossless:
        False for codecs (like the quantizer) that only bound, rather than
        eliminate, reconstruction error.
    """

    name: str = ""
    lossless: bool = True

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; must accept empty input."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`; raise :class:`CodecError` on bad input."""

    def iter_decompress(self, data, chunk_bytes: int = 1 << 22):
        """Yield the decompressed payload as a sequence of buffers.

        The streaming form of :meth:`decompress`: consumers that scan as
        they decode (the fused storage-side hot path) never hold more
        than ``chunk_bytes`` of decoded data per chunk — when the codec
        supports it.  This default yields one full buffer, so every codec
        is streamable (just without the memory win); codecs with real
        incremental decoders override it.
        """
        yield self.decompress(data)

    def ratio(self, data: bytes) -> float:
        """Compression ratio achieved on ``data`` (original / compressed)."""
        if not data:
            return 1.0
        compressed = self.compress(data)
        return len(data) / max(len(compressed), 1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec, replace: bool = False) -> Codec:
    """Register a codec instance under its ``name``."""
    if not codec.name:
        raise CodecError("codec has no name")
    if codec.name in _REGISTRY and not replace:
        raise CodecError(f"codec {codec.name!r} already registered")
    _REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """Look up a registered codec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY)
