"""From-scratch LZ4 *block format* compressor and decompressor.

The environment has no ``lz4`` binding, so this module implements the block
format defined by the LZ4 specification (lz4_Block_format.md):

* a block is a sequence of *sequences*;
* each sequence is ``token | [literal-length bytes] | literals |
  offset(2, LE) | [match-length bytes]``;
* the token's high nibble is the literal length (15 = more bytes follow,
  each adding 0..255, terminated by a byte != 255), the low nibble is the
  match length minus 4 with the same extension rule;
* matches copy ``match_length`` bytes from ``offset`` bytes back in the
  *output*, and may self-overlap (offset < length repeats a pattern);
* end-of-block restrictions: the last sequence is literals-only, the last
  5 bytes are always literals, and a match may not start within the last
  12 bytes.

The compressor is the reference greedy scheme: a hash table over 4-byte
windows with the acceleration skip heuristic.  It is written for clarity
and correctness first; throughput constants used in performance modelling
come from :mod:`repro.storage.netsim`, not from this pure-Python kernel.
"""

from __future__ import annotations

from repro.errors import CodecError

__all__ = ["lz4_compress_block", "lz4_decompress_block"]

_MINMATCH = 4
_MFLIMIT = 12          # a match may not start within this many bytes of the end
_LAST_LITERALS = 5     # the final bytes must be literals
_MAX_OFFSET = 65535
_HASH_MULT = 2654435761
_HASH_LOG = 16


def _hash4(word: int) -> int:
    """Hash a 4-byte little-endian window into the table index space."""
    return ((word * _HASH_MULT) & 0xFFFFFFFF) >> (32 - _HASH_LOG)


def _write_length(out: bytearray, extra: int) -> None:
    """Emit the 255-run extension encoding for a length remainder."""
    while extra >= 255:
        out.append(255)
        extra -= 255
    out.append(extra)


def _emit_sequence(
    out: bytearray, src: bytes, anchor: int, pos: int, offset: int, match_len: int
) -> None:
    """Emit one full sequence: literals ``src[anchor:pos]`` then a match."""
    lit_len = pos - anchor
    ml_code = match_len - _MINMATCH
    token = (min(lit_len, 15) << 4) | min(ml_code, 15)
    out.append(token)
    if lit_len >= 15:
        _write_length(out, lit_len - 15)
    out += src[anchor:pos]
    out.append(offset & 0xFF)
    out.append(offset >> 8)
    if ml_code >= 15:
        _write_length(out, ml_code - 15)


def _emit_last_literals(out: bytearray, src: bytes, anchor: int) -> None:
    """Emit the terminating literals-only sequence."""
    lit_len = len(src) - anchor
    out.append(min(lit_len, 15) << 4)
    if lit_len >= 15:
        _write_length(out, lit_len - 15)
    out += src[anchor:]


def lz4_compress_block(data: bytes, acceleration: int = 1) -> bytes:
    """Compress ``data`` into an LZ4 block.

    Parameters
    ----------
    data:
        Input bytes; empty input yields an empty block.
    acceleration:
        >= 1.  Higher values skip more aggressively after failed match
        attempts, trading ratio for speed (mirrors ``LZ4_compress_fast``).
    """
    src = bytes(data)
    n = len(src)
    if n == 0:
        return b""
    if acceleration < 1:
        raise CodecError(f"acceleration must be >= 1, got {acceleration}")

    out = bytearray()
    # Inputs too small to ever contain a legal match are all-literal.
    if n < _MFLIMIT + 1:
        _emit_last_literals(out, src, 0)
        return bytes(out)

    table: dict[int, int] = {}
    match_limit = n - _LAST_LITERALS
    scan_limit = n - _MFLIMIT
    anchor = 0
    pos = 0
    search_misses = 0
    frm = int.from_bytes  # local alias, hot path

    while pos <= scan_limit:
        word = frm(src[pos : pos + 4], "little")
        h = _hash4(word)
        candidate = table.get(h)
        table[h] = pos
        if (
            candidate is None
            or pos - candidate > _MAX_OFFSET
            or frm(src[candidate : candidate + 4], "little") != word
        ):
            search_misses += 1
            pos += 1 + (search_misses >> 6) * acceleration
            continue

        # Extend the match forward, comparing growing chunks.
        m = pos + _MINMATCH
        c = candidate + _MINMATCH
        while m < match_limit:
            span = min(64, match_limit - m)
            if src[m : m + span] == src[c : c + span]:
                m += span
                c += span
                continue
            # Binary-narrow the mismatch inside the chunk.
            step = span
            while step > 1:
                half = step // 2
                if src[m : m + half] == src[c : c + half]:
                    m += half
                    c += half
                step -= half
            if m < match_limit and src[m] == src[c]:
                m += 1
                c += 1
            break
        match_len = m - pos
        _emit_sequence(out, src, anchor, pos, pos - candidate, match_len)
        # Seed the table near the match end so later data can reference it.
        tail = pos + match_len
        if tail + 2 <= n:
            w = frm(src[tail - 2 : tail + 2], "little")
            table[_hash4(w)] = tail - 2
        pos = tail
        anchor = tail
        search_misses = 0

    _emit_last_literals(out, src, anchor)
    return bytes(out)


def lz4_decompress_block(block: bytes, max_output: int | None = None) -> bytes:
    """Decompress an LZ4 block.

    Parameters
    ----------
    block:
        The compressed block; empty input yields empty output.
    max_output:
        Optional hard cap on the decoded size, guarding against
        decompression bombs from untrusted inputs.

    Raises
    ------
    CodecError
        On any malformed input: truncated token/length/offset fields,
        zero offsets, or matches reaching before the start of output.
    """
    src = bytes(block)
    n = len(src)
    out = bytearray()
    i = 0
    while i < n:
        token = src[i]
        i += 1
        lit_len = token >> 4
        if lit_len == 15:
            while True:
                if i >= n:
                    raise CodecError("truncated literal-length extension")
                b = src[i]
                i += 1
                lit_len += b
                if b != 255:
                    break
        if i + lit_len > n:
            raise CodecError("literal run past end of block")
        out += src[i : i + lit_len]
        i += lit_len
        if max_output is not None and len(out) > max_output:
            raise CodecError(f"output exceeds max_output={max_output}")
        if i == n:
            break  # literals-only terminating sequence
        if i + 2 > n:
            raise CodecError("truncated match offset")
        offset = src[i] | (src[i + 1] << 8)
        i += 2
        if offset == 0:
            raise CodecError("zero match offset is invalid")
        match_len = (token & 0xF) + _MINMATCH
        if token & 0xF == 15:
            while True:
                if i >= n:
                    raise CodecError("truncated match-length extension")
                b = src[i]
                i += 1
                match_len += b
                if b != 255:
                    break
        start = len(out) - offset
        if start < 0:
            raise CodecError(
                f"match offset {offset} reaches before start of output"
            )
        if max_output is not None and len(out) + match_len > max_output:
            raise CodecError(f"output exceeds max_output={max_output}")
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: the pattern repeats; copy in doubling chunks.
            remaining = match_len
            while remaining > 0:
                avail = len(out) - start
                take = min(remaining, avail)
                out += out[start : start + take]
                start += take
                remaining -= take
    return bytes(out)
