"""LZ4 codec: frames the raw block format with a size header.

The raw block format does not record the decompressed size, so (like the
LZ4 frame format, simplified) we prepend a small header:

``b"LZ4B" | uint64 LE decompressed size | block bytes``

This mirrors how VTK stores per-block compressed sizes in its appended
data sections.
"""

from __future__ import annotations

import struct

from repro.compression.base import Codec, register_codec
from repro.compression.lz4 import lz4_compress_block, lz4_decompress_block
from repro.errors import CodecError

__all__ = ["LZ4Codec"]

_MAGIC = b"LZ4B"
_HEADER = struct.Struct("<4sQ")


class LZ4Codec(Codec):
    """LZ4 block compression with a minimal size-carrying frame."""

    name = "lz4"

    def __init__(self, acceleration: int = 1):
        if acceleration < 1:
            raise CodecError(f"acceleration must be >= 1, got {acceleration}")
        self.acceleration = acceleration

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        block = lz4_compress_block(data, acceleration=self.acceleration)
        return _HEADER.pack(_MAGIC, len(data)) + block

    def decompress(self, data: bytes) -> bytes:
        data = bytes(data)
        if len(data) < _HEADER.size:
            raise CodecError("LZ4 frame too short for header")
        magic, size = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CodecError(f"bad LZ4 frame magic {magic!r}")
        out = lz4_decompress_block(data[_HEADER.size :], max_output=size)
        if len(out) != size:
            raise CodecError(
                f"LZ4 frame declared {size} bytes but decoded {len(out)}"
            )
        return out


register_codec(LZ4Codec())
