"""The identity codec: the paper's "RAW" configuration."""

from __future__ import annotations

from repro.compression.base import Codec, register_codec

__all__ = ["NullCodec"]


class NullCodec(Codec):
    """Pass-through codec; lets RAW share the codec-configured code paths."""

    name = "raw"

    def compress(self, data: bytes) -> bytes:
        # bytes(b) returns b itself for bytes input: no copy on the
        # already-materialized path, one copy to freeze mutable buffers.
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)

    def iter_decompress(self, data, chunk_bytes: int = 1 << 22):
        """Identity streaming is fully zero-copy: yield the input itself."""
        yield data


register_codec(NullCodec())
