"""The identity codec: the paper's "RAW" configuration."""

from __future__ import annotations

from repro.compression.base import Codec, register_codec

__all__ = ["NullCodec"]


class NullCodec(Codec):
    """Pass-through codec; lets RAW share the codec-configured code paths."""

    name = "raw"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)


register_codec(NullCodec())
