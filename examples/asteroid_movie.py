#!/usr/bin/env python
"""The paper's Figs. 4/7/8 workload: a contour movie of the asteroid impact.

End to end, exactly as the paper's Fig. 11a deploys it:

* the synthetic deep-water impact dataset is written, LZ4-compressed, into
  a directory-backed object store (the MinIO stand-in),
* an NDP server mounts the store *locally* and listens on TCP,
* the client connects over the socket and iterates an
  :class:`~repro.core.prefetch.NDPPrefetcher` — the next timesteps' offload
  requests run on the storage node while the current frame is being
  post-filtered and rendered — drawing v02 (water, cyan) and v03
  (asteroid, yellow) at value 0.1 per timestep.

Run:  python examples/asteroid_movie.py [resolution] [out_dir]
Writes: asteroid_movie/frame_<timestep>.ppm
"""

import os
import sys
import tempfile
import time

from repro.core import NDPServer
from repro.core.prefetch import NDPPrefetcher
from repro.datasets import AsteroidImpactDataset, AsteroidParams
from repro.io import write_ppm, write_vgf
from repro.render import Camera, Scene
from repro.rpc import RPCClient
from repro.storage import DirectoryBackend, ObjectStore, S3FileSystem

RESOLUTION = int(sys.argv[1]) if len(sys.argv) > 1 else 64
OUT_DIR = sys.argv[2] if len(sys.argv) > 2 else "asteroid_movie"


def populate(store_root: str) -> tuple[ObjectStore, AsteroidImpactDataset]:
    """The simulation phase: write each timestep as an LZ4 VGF object."""
    store = ObjectStore(DirectoryBackend(store_root))
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    dataset = AsteroidImpactDataset(
        AsteroidParams(dims=(RESOLUTION, RESOLUTION, RESOLUTION))
    )
    for step in dataset.timesteps:
        t0 = time.perf_counter()
        grid = dataset.generate_arrays(step, ["v02", "v03"])
        blob = write_vgf(grid, codec="lz4", meta={"timestep": step})
        fs.write_object(f"ts{step:05d}.vgf", blob)
        print(
            f"  wrote ts{step:05d}.vgf ({len(blob) / 1e6:.2f} MB, "
            f"{time.perf_counter() - t0:.1f}s)"
        )
    return store, dataset


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_root:
        print(f"simulation: writing {RESOLUTION}^3 timesteps to the object store")
        store, dataset = populate(store_root)

        # Storage node: local mount + NDP service on a TCP socket.
        server = NDPServer(S3FileSystem(store, "sim"))
        listener = server.serve_tcp()
        print(f"NDP server listening on {listener.host}:{listener.port}")

        # Client node: a prefetching iterator keeps the next offloads in
        # flight on the server while this loop post-filters and renders.
        client = RPCClient.connect_tcp(listener.host, listener.port)
        requests = []
        for step in dataset.timesteps:
            key = f"ts{step:05d}.vgf"
            requests.append({"key": key, "kind": "contour", "array": "v02",
                             "values": [0.1]})
            requests.append({"key": key, "kind": "contour", "array": "v03",
                             "values": [0.1]})
        camera = None
        frame_parts: dict[str, list] = {}
        try:
            for key, polydata, stats in NDPPrefetcher(client, requests, depth=3):
                frame_parts.setdefault(key, []).append((polydata, stats))
                if len(frame_parts[key]) < 2:
                    continue
                (water, wstats), (asteroid, astats) = frame_parts.pop(key)
                t0 = time.perf_counter()
                scene = Scene()
                scene.add_mesh(water, color=(0.25, 0.8, 0.85))   # cyan ocean
                if asteroid.num_points:
                    scene.add_mesh(asteroid, color=(0.95, 0.85, 0.2))  # yellow
                if camera is None:  # fix the view on the first frame
                    camera = Camera.fit_bounds(scene.bounds())
                frame = scene.render(640, 480, camera=camera)
                path = os.path.join(OUT_DIR, f"frame_{key[2:7]}.ppm")
                write_ppm(path, frame)
                wire_kb = (wstats["wire_bytes"] + astats["wire_bytes"]) / 1e3
                raw_mb = (wstats["raw_bytes"] + astats["raw_bytes"]) / 1e6
                print(
                    f"  {path}: {water.triangles().shape[0]:6d} water tris, "
                    f"{asteroid.triangles().shape[0]:5d} asteroid tris | "
                    f"transferred {wire_kb:7.1f} kB of {raw_mb:.1f} MB raw "
                    f"(render {time.perf_counter() - t0:.1f}s)"
                )
        finally:
            client.close()
            listener.stop()
    print(f"done — {len(dataset.timesteps)} frames in {OUT_DIR}/")


if __name__ == "__main__":
    main()
