#!/usr/bin/env python
"""The paper's Fig. 3: a value-5 contour over an 8x6 mesh of digits 0..9.

Recreates the walkthrough from Sec. II-B: random single-digit values on a
small 2-D mesh, the contour at value 5, and — the part the whole paper
builds on — which edges are *interesting* (straddle the contour value)
and which mesh points the pre-filter would therefore transfer.

Run:  python examples/contour2d_fig3.py
"""

import numpy as np

from repro.core import prefilter_contour
from repro.core.interesting import interesting_point_mask
from repro.filters import contour_grid
from repro.grid import DataArray, UniformGrid

NX, NY, VALUE = 8, 6, 5.0

rng = np.random.default_rng(20240517)
values = rng.integers(0, 10, NX * NY).astype(np.float32)

grid = UniformGrid((NX, NY, 1))
grid.point_data.add(DataArray("v", values))

# ---------------------------------------------------------------------------
# Print the mesh with the selected (interesting) points marked.
# ---------------------------------------------------------------------------
field = grid.scalar_field("v")                      # (1, NY, NX)
mask = interesting_point_mask(field, [VALUE])[0]    # (NY, NX)

print(f"mesh values ({NX}x{NY}), contour value {VALUE:g}")
print("a point is [bracketed] when it touches an interesting edge:\n")
for j in reversed(range(NY)):                       # y up, like the figure
    cells = [
        f"[{int(field[0, j, i])}]" if mask[j, i] else f" {int(field[0, j, i])} "
        for i in range(NX)
    ]
    print("   " + " ".join(cells))

# ---------------------------------------------------------------------------
# The contour itself: line segments in the mesh plane.
# ---------------------------------------------------------------------------
poly = contour_grid(grid, "v", VALUE)
segments = poly.segments()
print(f"\ncontour: {segments.shape[0]} line segments")
for a, b in segments[:6]:
    pa, pb = poly.points[a], poly.points[b]
    print(f"  ({pa[0]:5.2f}, {pa[1]:5.2f}) -- ({pb[0]:5.2f}, {pb[1]:5.2f})")
if segments.shape[0] > 6:
    print(f"  ... and {segments.shape[0] - 6} more")

# ---------------------------------------------------------------------------
# What the pre-filter would ship for this pipeline.
# ---------------------------------------------------------------------------
sel = prefilter_contour(grid, "v", [VALUE], mode="edge")
closure = prefilter_contour(grid, "v", [VALUE])
print(
    f"\npre-filter selection: {sel.count}/{grid.num_points} points "
    f"(paper's Fig. 6 statistic: {sel.permillage:.0f} permille)"
)
print(
    f"cell-closure selection (exact reconstruction): {closure.count} points; "
    "as the paper notes, a random mesh shows limited reduction — real\n"
    "simulation fields (see examples/asteroid_movie.py) select far less."
)
