#!/usr/bin/env python
"""The paper's Fig. 12: halo candidates in the Nyx cosmology dataset.

Generates the synthetic Nyx snapshot, contours baryon density at the
halo-formation threshold 81.66 through the NDP offload path, reports the
selectivity statistic the paper quotes (0.06%), and renders the halo
surfaces.

Run:  python examples/nyx_halos.py [resolution]
Writes: nyx_halos.ppm
"""

import sys

from repro.core import NDPServer, ndp_contour
from repro.core.prefilter import selection_rate
from repro.filters.geometry import component_sizes, surface_area
from repro.datasets import NyxDataset, NyxParams
from repro.datasets.nyx import HALO_THRESHOLD
from repro.io import write_ppm, write_vgf
from repro.render import Scene
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

RESOLUTION = int(sys.argv[1]) if len(sys.argv) > 1 else 96


def main() -> None:
    print(f"generating the Nyx-like snapshot at {RESOLUTION}^3 ...")
    grid = NyxDataset(NyxParams(dims=(RESOLUTION,) * 3)).generate()
    density = grid.point_data.get("baryon_density")
    lo, hi = density.range()
    print(f"baryon density range: [{lo:.3g}, {hi:.3g}], "
          f"halo threshold {HALO_THRESHOLD}")

    permille = selection_rate(grid, "baryon_density", [HALO_THRESHOLD])
    print(f"data selectivity at the threshold: {permille / 10:.3f}% "
          f"(paper: 0.06%)")

    # Store the snapshot and contour it through the NDP path.
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sdrbench")
    fs = S3FileSystem(store, "sdrbench")
    fs.write_object("nyx.vgf", write_vgf(grid, codec="gzip"))
    server = NDPServer(fs)
    client = RPCClient(InProcessTransport(server.dispatch))

    halos, stats = ndp_contour(client, "nyx.vgf", "baryon_density", [HALO_THRESHOLD])
    print(
        f"halo surfaces: {halos.triangles().shape[0]} triangles; "
        f"transferred {stats['wire_bytes'] / 1e3:.1f} kB of "
        f"{stats['raw_bytes'] / 1e6:.1f} MB raw "
        f"(gzip stored {stats['stored_bytes'] / 1e6:.1f} MB — the paper's "
        "~11% finding)"
    )

    # The science the figure supports: each closed isosurface is a halo
    # candidate (small fragments are mesh noise, not halos).
    sizes = component_sizes(halos, min_points=12)
    print(
        f"halo candidates: {len(sizes)} connected surfaces "
        f"(largest {sizes[0]} points; total area {surface_area(halos):.4f})"
        if sizes else "halo candidates: none at this resolution"
    )

    scene = Scene(background=(0.02, 0.02, 0.05))
    scene.add_mesh(halos, color=(0.9, 0.55, 0.25))
    write_ppm("nyx_halos.ppm", scene.render(640, 480))
    print("wrote nyx_halos.ppm")


if __name__ == "__main__":
    main()
