#!/usr/bin/env python
"""Quickstart: build a pipeline, contour a field, split it for NDP.

Walks the library's three layers in one sitting:

1. the VTK-like data model and pipeline (grid -> contour filter -> render),
2. the paper's pre-/post-filter split, run in-process,
3. proof that the split reproduces the stock filter bit-for-bit.

Run:  python examples/quickstart.py
Writes: quickstart_contour.ppm
"""

import numpy as np

from repro import ContourFilter, DataArray, UniformGrid, split_contour_filter
from repro.io import write_ppm
from repro.pipeline import TrivialProducer
from repro.render import Scene

# ---------------------------------------------------------------------------
# 1. Build a dataset: two blobby "material" spheres in a 48^3 box.
# ---------------------------------------------------------------------------
n = 48
zz, yy, xx = np.meshgrid(*(np.arange(n),) * 3, indexing="ij")
blob_a = np.sqrt((xx - 18) ** 2 + (yy - 20) ** 2 + (zz - 24) ** 2)
blob_b = np.sqrt((xx - 32) ** 2 + (yy - 28) ** 2 + (zz - 24) ** 2)
field = np.minimum(blob_a, 0.8 * blob_b)

grid = UniformGrid((n, n, n))
grid.point_data.add(DataArray("dist", field.reshape(-1).astype(np.float32)))
print(f"grid: {grid.num_points} points, arrays={grid.point_data.names()}")

# ---------------------------------------------------------------------------
# 2. The stock pipeline: source -> contour filter -> output.
# ---------------------------------------------------------------------------
source = TrivialProducer(grid)
contour = ContourFilter("dist", values=[8.0])
contour.set_input_connection(0, source)
surface = contour.output()
print(f"stock contour: {surface.triangles().shape[0]} triangles")

# ---------------------------------------------------------------------------
# 3. Split the contour filter into the paper's NDP halves.
#    The pre-filter would run on the storage node; here we run both halves
#    in-process to show the hand-off.
# ---------------------------------------------------------------------------
pre, post = split_contour_filter(contour)
pre.set_input_connection(0, source)

selection = pre.output()   # <- this is all that would cross the network
print(
    f"pre-filter selected {selection.count} of {selection.total_points} points "
    f"({selection.permillage:.1f} permille); payload {selection.payload_nbytes / 1e3:.0f} kB "
    f"vs full array {grid.point_data.get('dist').nbytes / 1e3:.0f} kB"
)

post.set_input_data(selection)
rebuilt = post.output()

assert np.array_equal(surface.points, rebuilt.points), "reconstruction differs!"
print("post-filter output is bit-identical to the stock contour")

# ---------------------------------------------------------------------------
# 4. Render (the pipeline's sink) and write a PPM image.
# ---------------------------------------------------------------------------
scene = Scene()
scene.add_mesh(rebuilt, color=(0.3, 0.75, 0.9))
image = scene.render(640, 480)
write_ppm("quickstart_contour.ppm", image)
print("wrote quickstart_contour.ppm")
