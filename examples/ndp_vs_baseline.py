#!/usr/bin/env python
"""A miniature Table II: baseline vs NDP load times on the simulated testbed.

Builds the benchmark environment at a small resolution, replays the
paper's Sec. VI experiment (9 timesteps x 5 contour values x
{RAW, GZip, LZ4} x {baseline, NDP}), prints the Fig. 13-style series and
the Table II speedup matrix, and shows what the offload planner would
have decided for each configuration.

Run:  python examples/ndp_vs_baseline.py [resolution]
"""

import sys

from repro.bench import BenchEnv, print_table
from repro.bench.experiments import run_fig13, run_table2
from repro.core.planner import OffloadPlanner

RESOLUTION = int(sys.argv[1]) if len(sys.argv) > 1 else 48


def main() -> None:
    print(f"populating the simulated testbed at {RESOLUTION}^3 "
          "(paper-calibrated SSD/NIC/codec constants) ...")
    env = BenchEnv(dims=(RESOLUTION,) * 3)

    print_table(
        run_fig13(env, "v02", "raw"),
        title="Fig. 13a-style series — RAW v02 (simulated seconds)",
    )
    print_table(
        run_table2(env),
        title=(
            "Table II — speedups vs RAW baseline "
            "(paper: NDP 2.3-2.8, GZip 3.95, LZ4 4.6, G+N 4.8-7.4, L+N 6.2-11.9)"
        ),
    )

    # What would the planner have chosen, given only header statistics?
    planner = OffloadPlanner(env.testbed)
    rows = []
    for codec in ("raw", "gzip", "lz4"):
        step = env.timesteps[-1]
        sizes = env.stored_sizes("asteroid", step, "v02")
        sel = env.selection("asteroid", step, "v02", [0.1])
        raw_bytes = env.grid("asteroid", step).point_data.get("v02").nbytes
        decision = planner.decide(sizes[codec], raw_bytes, codec, sel.selectivity)
        rows.append(
            {
                "codec": codec,
                "use_ndp": decision.use_ndp,
                "predicted_speedup": decision.predicted_speedup,
            }
        )
    print_table(rows, title="Offload planner decisions (final timestep, v02 @ 0.1)")


if __name__ == "__main__":
    main()
