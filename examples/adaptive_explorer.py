#!/usr/bin/env python
"""Interactive-exploration session, scripted: statistics -> values -> ROI.

What an analyst actually does with a dataset they have never seen, using
the near-data endpoints so the full arrays never cross the network:

1. discover the timesteps with a :class:`~repro.io.catalog.TimestepCatalog`,
2. fetch value statistics + a histogram for the array of interest
   (``array_statistics``: ~200 bytes instead of the array),
3. pick contour values from the histogram,
4. let the :class:`~repro.core.planner.AdaptiveContourClient` probe once
   and route every load (NDP vs baseline),
5. zoom into the most interesting region with an ROI contour, and render
   it colored by isovalue.

Run:  python examples/adaptive_explorer.py [resolution]
Writes: explorer_overview.ppm, explorer_zoom.ppm
"""

import sys

import numpy as np

from repro.core import NDPServer, ndp_contour
from repro.core.planner import AdaptiveContourClient
from repro.datasets import AsteroidImpactDataset, AsteroidParams
from repro.filters.geometry import component_sizes, surface_area
from repro.grid import Bounds
from repro.io import TimestepCatalog, write_ppm, write_vgf
from repro.render import Scene
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem
from repro.storage.netsim import Testbed

RESOLUTION = int(sys.argv[1]) if len(sys.argv) > 1 else 48


def main() -> None:
    # -- setup: a populated store and its NDP server --------------------
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    dataset = AsteroidImpactDataset(AsteroidParams(dims=(RESOLUTION,) * 3))
    for step in dataset.timesteps[::2]:
        grid = dataset.generate_arrays(step, ["v02"])
        fs.write_object(
            f"ts{step:05d}.vgf",
            write_vgf(grid, codec="lz4", meta={"timestep": step}),
        )
    server = NDPServer(fs)
    client = RPCClient(InProcessTransport(server.dispatch))

    # -- 1. discover ------------------------------------------------------
    catalog = TimestepCatalog(fs)
    print(f"catalog: {len(catalog)} timesteps {catalog.timesteps}")
    last = catalog.timesteps[-1]
    key = catalog.entry(last).key

    # -- 2. near-data statistics ------------------------------------------
    stats = client.call("array_statistics", key, "v02", 10)
    print(
        f"v02 @ ts{last}: range [{stats['min']:.3f}, {stats['max']:.3f}], "
        f"mean {stats['mean']:.3f}"
    )
    counts = stats["histogram_counts"]
    edges = stats["histogram_edges"]
    bar = max(counts)
    for c, lo, hi in zip(counts, edges, edges[1:]):
        print(f"  [{lo:5.2f}, {hi:5.2f})  {'#' * max(1, int(40 * c / bar))} {c}")

    # -- 3. pick values off the histogram ---------------------------------
    values = [0.1, 0.5, 0.9]
    print(f"contouring at {values}")

    # -- 4. adaptive routing ------------------------------------------------
    adaptive = AdaptiveContourClient(client, S3FileSystem(store, "sim"), Testbed())
    overview, info = adaptive.contour(key, "v02", values)
    print(
        f"route={info['route']} (predicted speedup "
        f"{info['decision'].predicted_speedup:.2f}x); "
        f"{overview.triangles().shape[0]} triangles, "
        f"area {surface_area(overview):.3f}, "
        f"{len(component_sizes(overview, min_points=10))} components"
    )
    scene = Scene()
    scene.add_mesh(overview, scalars="contour_value", cmap="viridis")
    write_ppm("explorer_overview.ppm", scene.render(640, 480))

    # -- 5. zoom: ROI around the impact site --------------------------------
    b = overview.bounds
    cx, cy, _ = b.center
    zoom = Bounds(cx - 0.2, cx + 0.2, cy - 0.2, cy + 0.2, b.zmin, b.zmax)
    detail, roi_stats = ndp_contour(client, key, "v02", values, roi=zoom)
    print(
        f"ROI zoom: {detail.triangles().shape[0]} triangles, "
        f"{roi_stats['wire_bytes'] / 1e3:.1f} kB transferred "
        f"(full selection would be larger)"
    )
    if detail.num_points:
        zoom_scene = Scene(background=(0.05, 0.05, 0.08))
        zoom_scene.add_mesh(detail, scalars="contour_value", cmap="hot")
        write_ppm("explorer_zoom.ppm", zoom_scene.render(640, 480))
        print("wrote explorer_overview.ppm, explorer_zoom.ppm")

    srv_stats = client.call("server_stats")
    print(
        f"server totals: {srv_stats['prefilter_calls']} offloads, "
        f"{srv_stats['raw_bytes_scanned'] / 1e6:.1f} MB scanned -> "
        f"{srv_stats['wire_bytes_sent'] / 1e3:.1f} kB shipped "
        f"({srv_stats['reduction_ratio']:.0f}x reduction)"
    )


if __name__ == "__main__":
    main()
