"""Fig. 13 — NDP vs baseline data load times, six subfigures.

One subfigure per (codec, array): rows are timesteps, columns are the
baseline load plus NDP loads at the five contour values.  Paper shape:
NDP wins everywhere (1.2x-2.8x); the largest wins are on RAW data; LZ4
beats GZip; v03 edges out v02; the five NDP curves nearly coincide
because the selection is tiny relative to the array either way.
"""

import pytest

from repro.bench.experiments import run_fig13
from repro.bench.reporting import print_table

SUBFIGS = [
    ("raw", "v02", "13a"),
    ("gzip", "v02", "13b"),
    ("lz4", "v02", "13c"),
    ("raw", "v03", "13d"),
    ("gzip", "v03", "13e"),
    ("lz4", "v03", "13f"),
]


@pytest.mark.parametrize("codec,array,fig", SUBFIGS)
def test_fig13_subfigure(benchmark, env, codec, array, fig):
    rows = run_fig13(env, array, codec)
    print_table(rows, title=f"Fig. {fig} — {codec.upper()} {array}: baseline vs NDP (simulated s)")
    # On RAW data NDP wins at every timestep, as in the paper.  Under
    # compression two effects our cost model surfaces honestly bite the
    # early timesteps: (a) when the stored block is tiny, both paths are
    # decompress-dominated and NDP's scan has nothing left to save — the
    # penalty is bounded by scan/decompress throughput (~15%); (b) our
    # bench-resolution selections are ~(500/N)x the paper's relative size
    # (selectivity ~ 1/N), which inflates the NDP wire cost.  So: strict
    # wins for RAW everywhere and for compressed runs post-impact on the
    # selective array (v03); bounded slack (20%) elsewhere; totals win
    # except v02+codec, which is a wash (5%) at this resolution.
    half = len(rows) // 2
    raw_bytes = env.grid("asteroid", env.timesteps[0]).point_data.get(array).nbytes
    # Absolute NDP overhead floor: one pre-filter scan + request latencies.
    slack = raw_bytes / env.testbed.prefilter_bps + 1.5e-3
    for i, row in enumerate(rows):
        for v in (0.1, 0.3, 0.5, 0.7, 0.9):
            if codec == "raw" or (array == "v03" and i > half):
                assert row[f"ndp{v:g}_s"] < row["baseline_s"], (row["timestep"], v)
            else:
                assert row[f"ndp{v:g}_s"] < row["baseline_s"] + slack
    total_base = sum(row["baseline_s"] for row in rows)
    total_ndp = sum(row["ndp0.1_s"] for row in rows)
    if codec == "raw" or array == "v03":
        assert total_ndp < total_base
    else:
        assert total_ndp < 1.05 * total_base
    # NDP curves nearly coincide across contour values (paper Sec. VI).
    last = rows[-1]
    ndp_times = [last[f"ndp{v:g}_s"] for v in (0.1, 0.3, 0.5, 0.7, 0.9)]
    assert max(ndp_times) < 1.6 * min(ndp_times)

    step = env.timesteps[0]
    benchmark(lambda: env.ndp_load("asteroid", codec, step, array, [0.1]))
