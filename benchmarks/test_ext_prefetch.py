"""Extension — prefetch overlap: hiding storage latency behind client work.

The paper's runs are strictly sequential per timestep.
:class:`~repro.core.prefetch.NDPPrefetcher` overlaps the storage node's
work on timestep t+1 with the client's post-filter on timestep t.  This
bench measures *wall-clock* (not simulated) time with a deterministic
latency injected into every server dispatch, comparing the sequential
loop against the prefetching iterator on the same requests.

What the prefetcher can hide is *waiting* (network and storage latency,
modelled by the injected sleep); Python's GIL keeps the two sides'
NumPy compute mostly serialized.  The assertion therefore checks that a
majority of the injected latency disappears from the wall clock, not a
ratio of total times.
"""

import time

from repro.bench.reporting import print_table
from repro.render import Scene
from repro.core import NDPServer
from repro.core.ndp_client import ndp_contour
from repro.core.prefetch import NDPPrefetcher
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient, Transport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

SERVER_DELAY_S = 0.1
N_REQUESTS = 6


class DelayedTransport(Transport):
    """Adds a fixed dispatch delay: a stand-in for storage-side latency."""

    def __init__(self, inner: Transport, delay_s: float):
        self.inner = inner
        self.delay_s = delay_s

    def request(self, payload: bytes) -> bytes:
        time.sleep(self.delay_s)
        return self.inner.request(payload)


def _setup(env):
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = env.grid("asteroid", env.timesteps[0])
    for i in range(N_REQUESTS):
        fs.write_object(f"ts{i}.vgf", write_vgf(grid, codec="lz4"))
    server = NDPServer(fs)
    client = RPCClient(
        DelayedTransport(InProcessTransport(server.dispatch), SERVER_DELAY_S)
    )
    requests = [
        {"key": f"ts{i}.vgf", "kind": "contour", "array": "v02", "values": [0.1]}
        for i in range(N_REQUESTS)
    ]
    return client, requests


def _render(polydata) -> None:
    """The client-side per-frame work the prefetcher overlaps with."""
    scene = Scene()
    scene.add_mesh(polydata)
    scene.render(200, 150)


def test_ext_prefetch_overlap(benchmark, env):
    client, requests = _setup(env)

    # Sequential: every step waits out the full server delay, then renders.
    t0 = time.perf_counter()
    for req in requests:
        pd, _ = ndp_contour(client, req["key"], req["array"], req["values"])
        _render(pd)
    sequential_s = time.perf_counter() - t0

    # Prefetched: the next step's server delay overlaps this render.
    t0 = time.perf_counter()
    n_done = 0
    for _key, pd, _stats in NDPPrefetcher(client, requests, depth=2):
        _render(pd)
        n_done += 1
    prefetch_s = time.perf_counter() - t0
    assert n_done == N_REQUESTS

    hidden_s = sequential_s - prefetch_s
    injected_s = N_REQUESTS * SERVER_DELAY_S
    rows = [
        {
            "strategy": "sequential",
            "wall_s": sequential_s,
            "per_step_ms": 1e3 * sequential_s / N_REQUESTS,
        },
        {
            "strategy": "prefetch(depth=2)",
            "wall_s": prefetch_s,
            "per_step_ms": 1e3 * prefetch_s / N_REQUESTS,
        },
        {
            "strategy": "latency hidden",
            "wall_s": hidden_s,
            "per_step_ms": 1e3 * hidden_s / N_REQUESTS,
        },
    ]
    print_table(
        rows,
        title=(
            f"Extension — prefetch overlap ({N_REQUESTS} steps, "
            f"{SERVER_DELAY_S * 1e3:.0f} ms injected server latency = "
            f"{injected_s:.1f} s total)"
        ),
    )
    # The prefetcher must hide a majority of the injected wait time
    # (generous margin for scheduler noise).
    assert hidden_s > 0.5 * injected_s

    benchmark(lambda: list(NDPPrefetcher(client, requests[:2], depth=2)))
