"""Ablation — error-bounded lossy compression on Nyx (the paper's future work).

The paper anticipates that float-specialized compressors would succeed
where GZip's 11% fails on Nyx (Sec. VII).  The quantizer codec plays that
role: at loose error bounds it reaches ratios far beyond GZip's, and NDP
remains complementary on top of it.
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.compression import QuantizerCodec, get_codec


def test_abl_lossy_on_nyx(benchmark, env):
    data = env.grid("nyx", 0).point_data.get("baryon_density").values.tobytes()
    gz = get_codec("gzip")
    rows = [
        {
            "codec": "gzip (paper baseline)",
            "ratio": len(data) / len(gz.compress(data)),
            "max_error": 0.0,
        }
    ]
    for name in ("shuffle-gzip", "shuffle-lz4"):
        codec = get_codec(name)
        rows.append(
            {
                "codec": f"{name} (lossless)",
                "ratio": len(data) / len(codec.compress(data)),
                "max_error": 0.0,
            }
        )
    x = np.frombuffer(data, dtype=np.float32)
    for bound in (1e-3, 1e-2, 1e-1):
        codec = QuantizerCodec(abs_bound=bound)
        frame = codec.compress(data)
        y = np.frombuffer(codec.decompress(frame), dtype=np.float32)
        rows.append(
            {
                "codec": f"quantizer(eb={bound:g})",
                "ratio": len(data) / len(frame),
                "max_error": float(np.abs(x - y).max()),
            }
        )
    print_table(rows, title="Ablation — lossy compression on Nyx baryon density")

    gzip_ratio = rows[0]["ratio"]
    assert gzip_ratio < 1.5  # the paper's ~11% finding
    # Byte-shuffling squeezes a little more out of lossless coding...
    shuffle_row = next(r for r in rows if r["codec"].startswith("shuffle-gzip"))
    assert shuffle_row["ratio"] > gzip_ratio
    # ...but only error-bounded lossy coding changes the game.
    loosest = rows[-1]
    assert loosest["ratio"] > 3 * gzip_ratio  # future-work hypothesis holds
    for row in rows:
        if "eb=" not in row["codec"]:
            continue
        bound = float(row["codec"].split("=")[1].rstrip(")"))
        assert row["max_error"] <= bound * 1.01 + 1e-5

    codec = QuantizerCodec(abs_bound=1e-2)
    frame = codec.compress(data)
    benchmark(lambda: codec.decompress(frame))
