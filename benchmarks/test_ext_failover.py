"""Extension — failover latency: hedged reads vs. a dead replica.

The replication design claims failover is a *fast path*: with R=2, a
dead replica should cost roughly one fast connection failure on the
first few requests — until its circuit breaker opens and health ranking
moves it to the back of every chain — and nothing at all afterwards.
This bench measures end-to-end contour latency over an in-process
3-shard cluster, healthy versus one-replica-dead, and gates the
dead-replica p99 at 3x the healthy p99.

Geometry is asserted byte-identical in both conditions, with zero
baseline fallback reads (no ``fallback_fs`` is even configured).
"""

import time

from repro.bench.reporting import print_table
from repro.cluster import ClusterClient, load_manifest, shard_object
from repro.core import NDPServer
from repro.errors import RPCTransportError
from repro.filters import contour_grid
from repro.io import write_vgf
from repro.rpc import InProcessTransport
from repro.rpc.pool import EndpointPool
from repro.rpc.resilience import CircuitBreaker, RetryPolicy
from repro.storage import ObjectStore, S3FileSystem

SHARDS = 3
REPLICAS = 2
VALUES = [0.3]
ROUNDS = 40


class DeadTransport:
    """A replica whose socket is gone: every request fails fast."""

    def __init__(self):
        self.attempts = 0

    def request(self, payload):
        self.attempts += 1
        raise RPCTransportError("bench: replica is dead (connection refused)")

    def close(self):
        pass


def _assert_bytes_equal(a, b):
    assert a.points.tobytes() == b.points.tobytes()
    assert a.polys.connectivity.tobytes() == b.polys.connectivity.tobytes()
    assert a.polys.offsets.tobytes() == b.polys.offsets.tobytes()
    for x, y in zip(a.point_data, b.point_data):
        assert x.name == y.name and x.values.tobytes() == y.values.tobytes()


def _build(env, dead_shard=None):
    grid = env.grid("asteroid", env.timesteps[0])
    backend = env.store.backend.__class__()
    store = ObjectStore(backend)
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    key = "failover/full.vgf"
    fs.write_object(key, write_vgf(grid, codec="lz4"))
    manifest_obj = shard_object(fs, key, blocks=(1, 1, SHARDS),
                                shards=SHARDS, replicas=REPLICAS)
    manifest = load_manifest(fs, manifest_obj.manifest_key)
    transports = []
    for shard in range(SHARDS):
        if shard == dead_shard:
            transports.append(DeadTransport())
        else:
            server = NDPServer(fs, cache_bytes=64 * 2**20)
            transports.append(InProcessTransport(server.rpc.dispatch))
    pool = EndpointPool(
        transports,
        retry=RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0,
                          deadline=None),
        breaker_factory=lambda: CircuitBreaker(failure_threshold=3,
                                               reset_timeout=60.0),
    )
    return ClusterClient(pool, manifest), pool


def _p(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _run(cluster, reference):
    latencies = []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        result, stats = cluster.contour("v02", VALUES)
        latencies.append(time.perf_counter() - t0)
        assert stats["fallback_blocks"] == 0
    _assert_bytes_equal(result, reference)
    return latencies, stats


def test_ext_failover_latency(benchmark, bench_record, env):
    grid = env.grid("asteroid", env.timesteps[0])
    reference = contour_grid(grid, "v02", VALUES)

    healthy_cluster, healthy_pool = _build(env)
    healthy, _ = _run(healthy_cluster, reference)

    dead_cluster, dead_pool = _build(env, dead_shard=0)
    dead, dead_stats = _run(dead_cluster, reference)
    assert dead_pool.wait_drained(timeout=5.0)

    healthy_p99 = _p(healthy, 0.99)
    dead_p99 = _p(dead, 0.99)
    ratio = dead_p99 / healthy_p99 if healthy_p99 else float("inf")
    rows = [
        {"condition": "healthy", "p50_ms": _p(healthy, 0.5) * 1e3,
         "p99_ms": healthy_p99 * 1e3, "failovers": 0},
        {"condition": "shard0 dead", "p50_ms": _p(dead, 0.5) * 1e3,
         "p99_ms": dead_p99 * 1e3,
         "failovers": dead_pool.stats.as_dict().get("failovers", 0)},
    ]
    print_table(
        rows,
        title=(f"Extension — failover latency ({SHARDS} shards, R="
               f"{REPLICAS}, one replica dead, p99 gate 3x; "
               f"observed {ratio:.2f}x)"),
    )

    # The acceptance gate: hedged failover keeps the dead-replica p99
    # within 3x of the healthy cluster's.
    assert dead_p99 <= 3.0 * healthy_p99, (
        f"dead-replica p99 {dead_p99 * 1e3:.1f}ms vs healthy "
        f"{healthy_p99 * 1e3:.1f}ms ({ratio:.2f}x > 3x)"
    )
    # After the breaker trips, health ranking routes around the corpse:
    # the dead endpoint saw only a bounded number of attempts, not one
    # per request.
    assert dead_pool.endpoint_state(0) == "open"
    assert dead_stats["fallback_blocks"] == 0

    bench_record(
        healthy_p50_s=_p(healthy, 0.5), healthy_p99_s=healthy_p99,
        dead_p50_s=_p(dead, 0.5), dead_p99_s=dead_p99,
        dead_over_healthy_p99=ratio,
        failovers=dead_pool.stats.as_dict().get("failovers", 0),
        hedges=dead_pool.stats.as_dict().get("hedges", 0),
    )
    benchmark(lambda: _p(healthy, 0.99))
