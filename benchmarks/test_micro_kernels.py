"""Microbenchmarks of the hot kernels under every experiment.

Not a paper artifact: these isolate the building blocks (MessagePack,
LZ4, marching tetrahedra, the pre-filter scan, the full RPC round trip)
so regressions in any layer are visible independently of the end-to-end
tables.
"""

import numpy as np
import pytest

from repro.compression.lz4 import lz4_compress_block, lz4_decompress_block
from repro.core.encoding import encode_selection
from repro.core.prefilter import prefilter_contour
from repro.filters.marching_tets import marching_tetrahedra
from repro.rpc import RPCClient, RPCServer, pack, unpack


@pytest.fixture(scope="module")
def v02_grid(env):
    return env.grid("asteroid", env.timesteps[4])


def test_micro_msgpack_pack(benchmark, env):
    sel = env.selection("asteroid", env.timesteps[4], "v02", [0.1])
    payload = encode_selection(sel)
    result = benchmark(lambda: pack(payload))
    assert len(result) > 0


def test_micro_msgpack_unpack(benchmark, env):
    sel = env.selection("asteroid", env.timesteps[4], "v02", [0.1])
    frame = pack(encode_selection(sel))
    result = benchmark(lambda: unpack(frame))
    assert result["array"] == "v02"


def test_micro_lz4_compress(benchmark, v02_grid):
    data = v02_grid.point_data.get("v02").values.tobytes()
    block = benchmark(lambda: lz4_compress_block(data))
    assert len(block) < len(data)


def test_micro_lz4_decompress(benchmark, v02_grid):
    data = v02_grid.point_data.get("v02").values.tobytes()
    block = lz4_compress_block(data)
    out = benchmark(lambda: lz4_decompress_block(block))
    assert out == data


def test_micro_marching_tets(benchmark, v02_grid):
    field = v02_grid.scalar_field("v02")
    tris = benchmark(lambda: marching_tetrahedra(field, 0.1))
    assert tris.shape[0] > 0


def test_micro_prefilter_scan(benchmark, v02_grid):
    sel = benchmark(lambda: prefilter_contour(v02_grid, "v02", [0.1, 0.5, 0.9]))
    assert sel.count > 0


def test_micro_rpc_round_trip(benchmark):
    srv = RPCServer({"echo": lambda x: x})
    cli = RPCClient.in_process(srv)
    payload = np.zeros(65536, dtype=np.float32).tobytes()
    result = benchmark(lambda: cli.call("echo", payload))
    assert result == payload


def test_micro_full_ndp_load(benchmark, env):
    step = env.timesteps[4]
    _, res = benchmark(lambda: env.ndp_load("asteroid", "lz4", step, "v02", [0.1]))
    assert res.network_bytes > 0
