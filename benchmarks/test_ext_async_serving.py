"""Extension — serving-core scaling: async multiplexed vs thread-per-connection.

The threaded core dedicates a thread (and a connection slot) to every
client, so its concurrent-client capacity is the connection cap; beyond
it new clients are refused outright.  The async core multiplexes every
connection onto one I/O thread and pipelines requests, so the same
machine sustains several times the client count at equal-or-better tail
latency.

This bench drives the real NDP health endpoint over real sockets with
the open-loop Poisson load generator (latency measured from scheduled
arrival — no coordinated omission) and records the full latency
histograms in ``BENCH_results.json``:

* ``threaded @ C`` clients (its design capacity) — the baseline tail,
* ``threaded @ 4C`` clients against the same cap — refusals/errors show
  it cannot sustain the herd,
* ``async @ 4C`` clients — zero errors, tail no worse than the
  threaded core's at a quarter of the load.
"""

from repro.bench.loadgen import run_load
from repro.bench.reporting import print_table
from repro.core import NDPServer
from repro.io import write_vgf
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

from tests.conftest import make_sphere_grid

BASE_CLIENTS = 6
SCALE = 4
RATE = 30.0          # arrivals/s per connection
DURATION = 2.0


def _make_server():
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("obj.vgf", write_vgf(make_sphere_grid(16), codec="gzip"))
    return NDPServer(fs, cache_bytes=8 * 2**20, selection_cache_bytes=2**20)


def _drive(listener, connections, core, seed):
    return run_load(
        listener.host, listener.port, connections=connections, rate=RATE,
        duration=DURATION, method="health", core=core, timeout=10.0,
        seed=seed,
    )


def test_ext_async_serving_sustains_4x_clients(bench_record):
    # Threaded core at its design capacity: every client has a thread.
    threaded = _make_server().serve_tcp(max_connections=BASE_CLIENTS)
    try:
        base = _drive(threaded, BASE_CLIENTS, "legacy", seed=11)
        herd = _drive(threaded, SCALE * BASE_CLIENTS, "legacy", seed=12)
        refused = threaded.refused
    finally:
        threaded.stop(drain_timeout=5.0)

    # Async core: same machine, 4x the clients on one event loop.
    async_listener = _make_server().serve_async_tcp(workers=8)
    try:
        scaled = _drive(async_listener, SCALE * BASE_CLIENTS, "mux", seed=13)
    finally:
        async_listener.stop(drain_timeout=5.0)

    rows = [
        {"core": r.core, "clients": r.connections, "ok": r.ok,
         "errors": r.errors, "p50_ms": r.p50 * 1e3, "p99_ms": r.p99 * 1e3,
         "p999_ms": r.p999 * 1e3}
        for r in (base, herd, scaled)
    ]
    print_table(
        rows,
        ["core", "clients", "ok", "errors", "p50_ms", "p99_ms", "p999_ms"],
        title="serving cores under open-loop load "
              f"({RATE:.0f} Hz/conn, {DURATION:.0f}s)",
    )
    bench_record(
        threaded_base=base.to_dict(),
        threaded_herd=herd.to_dict(),
        threaded_herd_refused=refused,
        async_scaled=scaled.to_dict(),
        scale_factor=SCALE,
    )

    # The baseline is healthy at its design capacity...
    assert base.errors == 0
    # ...but cannot sustain 4x the clients: the cap refuses the excess,
    # which surfaces as failed requests at the herd.
    assert refused > 0
    assert herd.errors > 0
    # The async core sustains the same 4x herd with zero failures...
    assert scaled.errors == 0
    assert scaled.ok == scaled.sent
    # ...at a tail no worse than the threaded core served at 1x load
    # (generous headroom: CI boxes are noisy; the claim is "equal or
    # better", the guard is "not meaningfully worse").
    assert scaled.p99 <= max(2.0 * base.p99, 0.050), (
        f"async p99 {scaled.p99 * 1e3:.1f} ms vs "
        f"threaded baseline p99 {base.p99 * 1e3:.1f} ms"
    )
