"""Shared benchmark environment.

One session-scoped :class:`~repro.bench.harness.BenchEnv` backs every
figure/table benchmark: the synthetic datasets are generated and stored
under raw/gzip/lz4 once, and each bench replays the paper's loads against
the calibrated simulated testbed (see DESIGN.md §6).

Resolution defaults to 64^3 so the whole suite runs in minutes; set
``REPRO_BENCH_DIM=96`` (or higher) for closer-to-paper statistics.  The
printed tables carry simulated seconds; the paper's absolute numbers
correspond to 500^3 arrays, so only *ratios* are comparable, which is what
EXPERIMENTS.md records.
"""

import os

import pytest

from repro.bench import BenchEnv

BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "64"))


@pytest.fixture(scope="session")
def env():
    return BenchEnv(dims=(BENCH_DIM,) * 3, with_nyx=True)


def pytest_report_header(config):
    return f"repro benchmarks: dataset resolution {BENCH_DIM}^3"
