"""Shared benchmark environment.

One session-scoped :class:`~repro.bench.harness.BenchEnv` backs every
figure/table benchmark: the synthetic datasets are generated and stored
under raw/gzip/lz4 once, and each bench replays the paper's loads against
the calibrated simulated testbed (see DESIGN.md §6).

Resolution defaults to 64^3 so the whole suite runs in minutes; set
``REPRO_BENCH_DIM=96`` (or higher) for closer-to-paper statistics.  The
printed tables carry simulated seconds; the paper's absolute numbers
correspond to 500^3 arrays, so only *ratios* are comparable, which is what
EXPERIMENTS.md records.

Every session also emits ``BENCH_results.json`` (override the path with
``REPRO_BENCH_RESULTS``): one record per benchmark with its wall-clock
call duration and the simulated seconds it advanced the shared testbed
clock, plus a :class:`repro.obs.Registry` snapshot of the session totals.
CI uploads the file as an artifact, so the perf trajectory accumulates
run over run.
"""

import json
import os
import time

import pytest

from repro.bench import BenchEnv
from repro.obs import Registry

BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "64"))

#: Session-wide totals surfaced in the BENCH_results.json snapshot.
_registry = Registry(namespace="bench")
_results: list[dict] = []
_env: BenchEnv | None = None
#: Per-test extra fields (keyed by nodeid) merged into the JSON record.
_extras: dict[str, dict] = {}


@pytest.fixture
def bench_record(request):
    """Attach structured numbers to this benchmark's JSON record.

    ``bench_record(shards={1: ..., 8: ...}, speedup=3.9)`` lands the
    keyword arguments in the test's entry in ``BENCH_results.json``, so
    scaling curves survive into the CI artifact instead of living only
    in the printed table.
    """
    extras = _extras.setdefault(request.node.nodeid, {})

    def record(**fields):
        extras.update(fields)

    return record


@pytest.fixture(scope="session")
def env():
    global _env
    if _env is None:
        _env = BenchEnv(dims=(BENCH_DIM,) * 3, with_nyx=True)
    return _env


def pytest_report_header(config):
    return f"repro benchmarks: dataset resolution {BENCH_DIM}^3"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    sim_before = _env.testbed.clock.now if _env is not None else None
    wall_before = time.perf_counter()
    outcome = yield
    wall = time.perf_counter() - wall_before
    record = {
        "name": item.nodeid,
        "wall_s": wall,
        "outcome": "failed" if outcome.excinfo is not None else "passed",
    }
    # The env fixture may have been built lazily inside this very test;
    # only a before/after pair measures a meaningful delta.
    if _env is not None and sim_before is not None:
        record["sim_s"] = _env.testbed.clock.now - sim_before
    record.update(_extras.pop(item.nodeid, {}))
    _results.append(record)
    _registry.counter("benchmarks_run").inc()
    _registry.histogram("benchmark_wall_seconds").observe(wall)
    if "sim_s" in record:
        _registry.histogram("benchmark_sim_seconds").observe(record["sim_s"])


def pytest_sessionfinish(session, exitstatus):
    if not _results:
        return
    if _env is not None:
        _registry.gauge("sim_clock_total_seconds").set(_env.testbed.clock.now)
    payload = {
        "dim": BENCH_DIM,
        "exit_status": int(exitstatus),
        "benchmarks": _results,
        "totals": _registry.snapshot(),
    }
    path = os.environ.get("REPRO_BENCH_RESULTS", "BENCH_results.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    tw = getattr(session.config, "get_terminal_writer", lambda: None)()
    if tw is not None:
        tw.line(f"wrote {len(_results)} benchmark records to {path}")
