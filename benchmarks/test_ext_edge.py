"""Extension — edge cache tier: LAN-like latency over a WAN hop.

The paper's NDP server assumes the client sits next to the storage rack.
When the analyst is a continent away, every contour pays the WAN round
trip plus the narrow uplink/downlink.  The edge cache
(:class:`~repro.edge.EdgeCacheServer`) sits on the client's LAN, speaks
the same RPC protocol on both faces, and forwards misses upstream — so
warm repeats and (after block promotion) nearby-ROI contours are served
without touching the WAN at all.

Topology on one simulated clock::

    direct:  client --wan-cross-country--> storage NDP server
    edged:   client --lan--> edge --wan-cross-country--> storage NDP server

The edge runs in ``watch`` coherence mode (strict would pay one WAN
probe per serve, which is the wrong trade across a 35 ms hop; staleness
is bounded by the poll interval instead).  Acceptance: warm p50 at least
5x better than direct-over-WAN, and the cold path byte-identical to a
direct read of the same frame.
"""

import statistics

from repro.bench.reporting import print_table
from repro.core import NDPServer
from repro.edge import EdgeCacheServer
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.rpc.msgpack import pack
from repro.rpc.transport import SimulatedTransport
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem
from repro.storage.netsim import Testbed, wan_link_pair

KEY = "ts.vgf"
ARRAY = "v02"
VALUE = 0.5
REPEATS = 9
WAN = "wan-cross-country"


def _setup(env):
    """Client-side LAN edge fronting a WAN-remote storage server."""
    tb = Testbed()
    store = ObjectStore(MemoryBackend(), device=tb.ssd)
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = env.grid("asteroid", env.timesteps[0])
    fs.write_object(KEY, write_vgf(grid, codec="lz4"))
    server = NDPServer(fs, testbed=tb)
    tb.reset()

    def wan(dispatch):
        up, down = wan_link_pair(WAN, tb.clock)
        return SimulatedTransport(InProcessTransport(dispatch), up,
                                  response_link=down)

    edge = EdgeCacheServer([wan(server.dispatch)], coherence="watch")
    lan_up, lan_down = wan_link_pair("lan", tb.clock)
    edge_client = RPCClient(SimulatedTransport(
        InProcessTransport(edge.dispatch), lan_up, response_link=lan_down))
    direct_client = RPCClient(wan(server.dispatch))
    return tb, server, edge, edge_client, direct_client


def _roi_for(grid, i):
    """A small axis-aligned window, shifted per request."""
    b = grid.bounds
    dx = (b.xmax - b.xmin) / 10.0
    lo = b.xmin + i * dx / 2.0
    return [lo, lo + 3 * dx, b.ymin, b.ymax, b.zmin, b.zmax]


def _timed(tb, fn) -> float:
    t0 = tb.clock.now
    fn()
    return tb.clock.now - t0


def test_ext_edge_wan(benchmark, env, bench_record):
    tb, server, edge, edge_client, direct_client = _setup(env)
    grid = env.grid("asteroid", env.timesteps[0])

    # -- direct over WAN: every repeat pays the round trip + transfer
    direct_times = [
        _timed(tb, lambda: direct_client.call(
            "prefilter_contour", KEY, ARRAY, [VALUE]))
        for _ in range(REPEATS)
    ]

    # -- edge: one cold miss (forwarded over the WAN), then warm repeats
    cold_s = _timed(tb, lambda: edge_client.call(
        "prefilter_contour", KEY, ARRAY, [VALUE]))
    warm_times = [
        _timed(tb, lambda: edge_client.call(
            "prefilter_contour", KEY, ARRAY, [VALUE]))
        for _ in range(REPEATS)
    ]

    # -- block promotion: a second distinct value trips the miss
    # threshold, the edge pulls the decoded block once over the WAN, and
    # every nearby-ROI contour after that is computed on the LAN side.
    promote_s = _timed(tb, lambda: edge_client.call(
        "prefilter_contour", KEY, ARRAY, [VALUE + 0.1]))
    roi_times = [
        _timed(tb, lambda: edge_client.call(
            "prefilter_contour", KEY, ARRAY, [VALUE + 0.2],
            "cell-closure", "auto", "lz4", _roi_for(grid, i)))
        for i in range(REPEATS)
    ]

    direct_p50 = statistics.median(direct_times)
    warm_p50 = statistics.median(warm_times)
    roi_p50 = statistics.median(roi_times)

    print_table(
        [
            {"path": "direct (WAN)", "p50_s": direct_p50,
             "best_s": min(direct_times), "worst_s": max(direct_times)},
            {"path": "edge cold miss", "p50_s": cold_s,
             "best_s": cold_s, "worst_s": cold_s},
            {"path": "edge warm repeat", "p50_s": warm_p50,
             "best_s": min(warm_times), "worst_s": max(warm_times)},
            {"path": "edge block promote", "p50_s": promote_s,
             "best_s": promote_s, "worst_s": promote_s},
            {"path": "edge nearby ROI", "p50_s": roi_p50,
             "best_s": min(roi_times), "worst_s": max(roi_times)},
        ],
        title=(f"Extension — edge cache over {WAN} "
               f"({REPEATS} repeats, simulated s)"),
    )
    bench_record(
        wan_profile=WAN,
        direct_p50_s=direct_p50,
        edge_cold_s=cold_s,
        edge_warm_p50_s=warm_p50,
        edge_roi_p50_s=roi_p50,
        warm_speedup=direct_p50 / warm_p50,
        roi_speedup=direct_p50 / roi_p50,
    )

    # The acceptance gate: warm repeats at least 5x better than direct.
    assert direct_p50 >= 5.0 * warm_p50
    # Nearby-ROI contours ride the promoted block: also LAN-like.
    assert direct_p50 >= 5.0 * roi_p50
    # The warm path really did stay off the WAN.
    info = edge.server_stats()
    assert info["hits"] >= REPEATS
    assert info["local_computes"] >= REPEATS
    assert info["block_promotions"] == 1

    benchmark(lambda: edge_client.call(
        "prefilter_contour", KEY, ARRAY, [VALUE]))


def test_ext_edge_cold_byte_identity(env):
    """A cold edge is protocol-invisible: byte-identical to direct."""
    tb = Testbed()
    store = ObjectStore(MemoryBackend(), device=tb.ssd)
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = env.grid("asteroid", env.timesteps[0])
    fs.write_object(KEY, write_vgf(grid, codec="lz4"))
    direct = NDPServer(fs)
    upstream = NDPServer(fs)
    edge = EdgeCacheServer([InProcessTransport(upstream.dispatch)])

    for msgid, params in [
        (1, [KEY, ARRAY, [VALUE]]),
        (2, [KEY, ARRAY, [VALUE], "cell-closure", "auto", "gzip"]),
        (3, [KEY, ARRAY, [0.2, 0.8]]),
    ]:
        frame = pack([0, msgid, "prefilter_contour", params])
        assert edge.dispatch(frame) == direct.dispatch(frame)
    # warm replies decode to the same message even after re-packing
    frame = pack([0, 9, "prefilter_contour", [KEY, ARRAY, [VALUE]]])
    assert edge.dispatch(frame) == direct.dispatch(frame)
