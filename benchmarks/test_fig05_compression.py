"""Fig. 5 — VTK-native compression: sizes and load times, v02 and v03.

Paper shape: GZip ratio 7-588x > LZ4 ratio 6-299x, both decaying over
timesteps (5a/5d); remote loads >= 3x faster with either codec (5b/5e);
on a local filesystem LZ4 always loads faster than GZip because GZip's
decompression overhead dominates once the network is gone (5c/5f).
"""

from repro.bench.experiments import run_fig5_local, run_fig5_remote, run_fig5_sizes
from repro.bench.reporting import print_table
from repro.compression import get_codec


def test_fig05_sizes_and_ratios(benchmark, env):
    for array, fig in (("v02", "5a"), ("v03", "5d")):
        rows = run_fig5_sizes(env, array)
        print_table(rows, title=f"Fig. {fig} — stored sizes, {array}")
        assert rows[0]["gzip_ratio"] > rows[-1]["gzip_ratio"]  # entropy growth
        for row in rows:
            assert row["gzip_ratio"] > row["lz4_ratio"] > 1.0

    data = env.grid("asteroid", env.timesteps[-1]).point_data.get("v02").values.tobytes()
    gz = get_codec("gzip")
    benchmark(lambda: gz.compress(data))


def test_fig05_remote_load_times(benchmark, env):
    for array, fig in (("v02", "5b"), ("v03", "5e")):
        rows = run_fig5_remote(env, array)
        print_table(rows, title=f"Fig. {fig} — remote (s3fs over link) load times, {array}")
        for row in rows:
            assert row["gzip_s"] < row["raw_s"] / 2
            assert row["lz4_s"] < row["raw_s"] / 2

    benchmark(lambda: env.baseline_load("asteroid", "gzip", env.timesteps[0], "v02"))


def test_fig05_local_load_times(benchmark, env):
    for array, fig in (("v02", "5c"), ("v03", "5f")):
        rows = run_fig5_local(env, array)
        print_table(rows, title=f"Fig. {fig} — local filesystem load times, {array}")
        # The paper's headline for these subfigures: LZ4 < GZip everywhere.
        assert all(row["lz4_s"] < row["gzip_s"] for row in rows)

    blob = env.store.backend.get("sim", env.key("asteroid", "lz4", 0), 0, None)
    lz = get_codec("lz4")
    from repro.io.vgf import read_vgf_array, read_vgf_info

    info = read_vgf_info(blob)
    benchmark(lambda: read_vgf_array(blob, "v02", info))
