"""Figs. 12 & 14 — the Nyx cosmology dataset.

Fig. 12's statistic: the baryon-density halo contour at 81.66 selects
~0.06% of the data.  Fig. 14's shape: NDP cuts load times 1.8x-2.3x for
raw and both codecs, while GZip itself barely helps (11% size cut) and
adds decompression overhead — the worst of the three baselines.
"""

from repro.bench.experiments import run_fig14
from repro.bench.reporting import print_table
from repro.datasets.nyx import HALO_THRESHOLD


def test_fig12_halo_selectivity(benchmark, env):
    permille = env.selection_permillage("nyx", 0, "baryon_density", [HALO_THRESHOLD])
    print(f"\nFig. 12 — halo contour selectivity: {permille:.3f} permille "
          f"(paper: 0.6 permille = 0.06%)")
    assert 0.2 < permille < 1.5

    grid = env.grid("nyx", 0)
    from repro.core.prefilter import prefilter_contour

    benchmark(lambda: prefilter_contour(grid, "baryon_density", [HALO_THRESHOLD]))


def test_fig14_nyx_load_times(benchmark, env):
    rows = run_fig14(env)
    print_table(rows, title="Fig. 14 — Nyx load times (paper: NDP 1.8-2.3x)")
    for row in rows:
        assert 1.5 < row["speedup"] < 3.2
    raw = next(r for r in rows if r["codec"] == "raw")
    gzip_ = next(r for r in rows if r["codec"] == "gzip")
    # GZip bought almost nothing on Nyx and pays decompression on top:
    # it is the slowest baseline (paper Sec. VII).
    assert gzip_["stored_mb"] > 0.85 * raw["stored_mb"]
    assert gzip_["baseline_s"] >= raw["baseline_s"]

    benchmark(lambda: env.ndp_load("nyx", "raw", 0, "baryon_density", [HALO_THRESHOLD]))
