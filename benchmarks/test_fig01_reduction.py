"""Fig. 1 — data-reduction ratios: compression vs contour-based selection.

Paper shape: GZip/LZ4 reduce 1-2 orders of magnitude; selecting only the
data a contour filter needs reduces up to 7 orders of magnitude (on the
500^3 dataset).  At bench resolution the *ordering* and the
orders-of-magnitude gap on the most selective array (v03) reproduce; the
absolute ceiling scales with resolution (see test_abl_resolution).
"""

from repro.bench.experiments import run_fig1
from repro.bench.reporting import print_table
from repro.core.encoding import encode_selection, wire_size


def test_fig01_reduction_ratios(benchmark, env):
    for array in ("v02", "v03"):
        rows = run_fig1(env, array)
        print_table(rows, title=f"Fig. 1 — reduction ratios, {array}")
        sel_row = next(r for r in rows if r["technique"] == "contour-selection")
        # Selection reduces by orders of magnitude.  Its ceiling scales
        # with resolution (selectivity ~ 1/N, see test_abl_resolution):
        # at the paper's 500^3 the same statistic reaches ~7 orders.
        if array == "v03":
            assert sel_row["max_ratio"] > 50
            n = env.grid("asteroid", env.timesteps[0]).dims[0]
            print(f"  (x{500 / n:.1f} more at the paper's 500^3 resolution)")

    # Kernel under the figure: encoding one selection for the wire.
    sel = env.selection("asteroid", env.timesteps[0], "v03", [0.1])
    benchmark(lambda: wire_size(encode_selection(sel)))
