"""Extension — offloading further filter types (the paper's future work).

The paper's prototype splits only the contour filter.  This bench
exercises the threshold and axis-aligned slice splits over the asteroid
dataset, reporting the same network-reduction statistic:

* slice ships <= 2/N of the grid regardless of content,
* threshold ships exactly its result set, so its reduction tracks the
  range's volume fraction (reported across a sweep).
"""

from repro.bench.reporting import print_table
from repro.core import ndp_slice, ndp_threshold


def test_ext_slice_offload(benchmark, env):
    grid = env.grid("asteroid", env.timesteps[-1])
    n = grid.dims[2]
    rows = []
    for frac in (0.2, 0.5, 0.8):
        coord = grid.origin[2] + frac * (n - 1) * grid.spacing[2]
        pd, stats = ndp_slice(
            env.ndp_client, env.key("asteroid", "raw", env.timesteps[-1]),
            "v02", 2, coord,
        )
        rows.append(
            {
                "z_fraction": frac,
                "triangles": pd.triangles().shape[0],
                "selected_pts": stats["selected_points"],
                "wire_kb": stats["wire_bytes"] / 1e3,
                "reduction_x": stats["raw_bytes"] / stats["wire_bytes"],
            }
        )
    print_table(rows, title="Extension — offloaded axis-aligned slice (v02)")
    for row in rows:
        assert row["selected_pts"] <= 2 * grid.dims[0] * grid.dims[1]
        assert row["reduction_x"] > 5

    coord = grid.origin[2] + 0.3 * (n - 1) * grid.spacing[2]
    env.testbed.reset()
    benchmark(
        lambda: ndp_slice(
            env.ndp_client, env.key("asteroid", "raw", env.timesteps[-1]),
            "v02", 2, coord,
        )
    )


def test_ext_threshold_offload(benchmark, env):
    step = env.timesteps[-1]
    key = env.key("asteroid", "raw", step)
    rows = []
    for lo, hi in ((0.999, 1.0), (0.5, 1.0), (0.05, 0.95)):
        pd, stats = ndp_threshold(env.ndp_client, key, "v02", lo, hi)
        rows.append(
            {
                "range": f"[{lo}, {hi}]",
                "selected_pts": stats["selected_points"],
                "fraction": stats["selected_points"] / stats["total_points"],
                "wire_kb": stats["wire_bytes"] / 1e3,
                "reduction_x": stats["raw_bytes"] / max(stats["wire_bytes"], 1),
            }
        )
    print_table(rows, title="Extension — offloaded threshold (v02)")
    # Narrower ranges select less and reduce more.
    assert rows[0]["selected_pts"] < rows[1]["selected_pts"]
    assert rows[0]["reduction_x"] > rows[2]["reduction_x"]

    env.testbed.reset()
    benchmark(lambda: ndp_threshold(env.ndp_client, key, "v02", 0.999, 1.0))
