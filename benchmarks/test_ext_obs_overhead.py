"""Observability overhead gate: recorder + SLO + profiler under 5%.

Extension benchmark (not a paper artifact).  ``repro serve`` runs with
the flight recorder, the SLO engine, and the sampling profiler on *by
default*; this benchmark is the contract that keeps that defensible.
Two identical NDP servers answer the same fused-hot-path contour
requests through the full RPC dispatch layer (where the per-request
recording happens):

* *on* — flight recorder (with a dump dir), per-tenant SLO engine, and
  the sampling profiler running at its default 67 Hz,
* *off* — every observability hook nulled out.

The two request loops are interleaved so host load drift hits both
equally, and the gate asserts the instrumented server costs less than
5% wall-clock over the bare one.  The profiler's collapsed flamegraph
and a flight-recorder dump are written next to ``BENCH_results.json``
(override the directory with ``REPRO_OBS_ARTIFACT_DIR``) so CI uploads
real artifacts, not just the ratio.
"""

import os
import time

import numpy as np

from repro.grid.array import DataArray
from repro.grid.uniform import UniformGrid
from repro.io.vgf import write_vgf
from repro.rpc.msgpack import pack, unpack
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem

DIM = int(os.environ.get("REPRO_OBS_DIM", "64"))
VALUES = [-0.5, 0.0, 0.5]
BATCH = 24          # dispatches per timing sample
REPEATS = 5         # best-of, interleaved
MAX_OVERHEAD = 0.05

_ARTIFACT_DIR = os.environ.get("REPRO_OBS_ARTIFACT_DIR", ".")


def _fresh_fs():
    n = DIM
    rng = np.random.default_rng(7)
    z, y, x = np.meshgrid(
        np.linspace(0, 2 * np.pi, n),
        np.linspace(0, 2 * np.pi, n),
        np.linspace(0, 2 * np.pi, n),
        indexing="ij",
    )
    f = (np.sin(2 * x) * np.cos(y) + 0.3 * np.sin(3 * z)).astype(np.float32)
    f += rng.normal(scale=0.02, size=f.shape).astype(np.float32)
    grid = UniformGrid((n, n, n), (0, 0, 0), (1, 1, 1))
    grid.point_data.add(DataArray("s", f.reshape(-1)))
    store = ObjectStore(MemoryBackend())
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    fs.write_object("wave.vgf", write_vgf(grid, codec="lz4"))
    return fs


def _servers(tmp_path):
    """(instrumented server, bare server) over identical stores."""
    from repro.core.ndp_server import NDPServer

    on = NDPServer(
        _fresh_fs(), cache_bytes=0,
        flight_recorder="auto", slo="auto", profiler="auto",
        dump_dir=str(tmp_path),
    )
    off = NDPServer(
        _fresh_fs(), cache_bytes=0,
        flight_recorder=None, slo=None, profiler=None,
    )
    return on, off


def _drive(server, batch=BATCH):
    """Dispatch one batch of contour requests through the RPC layer."""
    for i in range(batch):
        raw = server.dispatch(pack([
            0, i + 1, "prefilter_contour", ["wave.vgf", "s", VALUES],
            {"tenant": "bench"},
        ]))
        reply = unpack(raw)
        assert reply[2] is None, reply[2]


def test_observability_overhead_under_5pct(tmp_path, bench_record):
    on, off = _servers(tmp_path)
    assert on.recorder and on.slo is not None and on.profiler
    assert not off.recorder and off.slo is None and not off.profiler

    # Warm both paths (imports, allocator) outside the timed region.
    _drive(on, batch=3)
    _drive(off, batch=3)

    on.profiler.start()
    try:
        t_on = t_off = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            _drive(on)
            t1 = time.perf_counter()
            _drive(off)
            t2 = time.perf_counter()
            t_on = min(t_on, t1 - t0)
            t_off = min(t_off, t2 - t1)
    finally:
        on.profiler.stop()

    overhead = t_on / t_off - 1.0
    per_request_us = (t_on - t_off) / BATCH * 1e6

    # The profiler really sampled this process while it worked, and the
    # recorder really held the request timeline — the 5% buys something.
    prof = on.profiler.snapshot()
    assert prof["samples"] >= 1
    events = on.recorder.snapshot()
    kinds = {e["kind"] for e in events}
    assert {"request.begin", "request.end", "phase"} <= kinds
    assert on.slo.tenant_state("bench")["total"] >= 2 * BATCH

    # CI artifacts: the flamegraph and a dump, next to BENCH_results.json.
    os.makedirs(_ARTIFACT_DIR, exist_ok=True)
    flame = os.path.join(_ARTIFACT_DIR, "obs_profile.collapsed")
    with open(flame, "w", encoding="utf-8") as fh:
        fh.write(on.profiler.collapsed() + "\n")
    dump = on.recorder.dump(
        reason="bench",
        path=os.path.join(_ARTIFACT_DIR, "obs_flightrec_dump.jsonl"),
    )

    bench_record(
        dim=DIM, batch=BATCH, values=len(VALUES),
        wall_on_s=t_on, wall_off_s=t_off, overhead_fraction=overhead,
        overhead_per_request_us=per_request_us,
        profiler_samples=prof["samples"],
        recorder_events=on.recorder.info()["recorded"],
        flamegraph=flame, dump=dump,
    )

    print(f"\nobservability overhead at {DIM}^3, batch {BATCH}:")
    print(f"  on  (recorder+slo+profiler) {t_on * 1e3:8.1f} ms")
    print(f"  off (all nulled)            {t_off * 1e3:8.1f} ms")
    print(f"  overhead {overhead * 100:+.2f}% "
          f"({per_request_us:+.0f} us/request), "
          f"{prof['samples']} profiler samples, "
          f"{on.recorder.info()['recorded']} events recorded")

    assert overhead < MAX_OVERHEAD, (
        f"observability costs {overhead * 100:.1f}% wall-clock "
        f"(gate: {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_recorder_hot_path_is_sub_microsecond_scale(bench_record):
    """The raw record() cost, isolated: the budget every instrumented
    call site pays.  Gated loosely (10 us) so only a pathological
    regression — accidental locking, string formatting — trips it."""
    from repro.obs.flightrec import FlightRecorder

    rec = FlightRecorder(capacity=8192)
    n = 20_000
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for i in range(n):
            rec.record("phase", name="bench", duration=0.001, i=i)
        best = min(best, time.perf_counter() - t0)
    per_event_us = best / n * 1e6
    bench_record(record_per_event_us=per_event_us)
    print(f"\nrecord(): {per_event_us:.2f} us/event")
    assert per_event_us < 10.0
