"""Extension — sharded cluster: storage-side scan scaling with shard count.

The paper's NDP node does the whole read + decompress + scan serially on
one storage server.  Splitting the object into K blocks served by K
independent NDP servers lets those storage-side costs run concurrently;
the gather (selection transfer + stitch + post-filter) stays on the
client.  This bench contours the asteroid dataset through clusters of
1, 2, 4, and 8 shards, each shard on its **own** simulated testbed, and
reports the storage-side critical path — the *slowest* shard's simulated
seconds, which is when the gather can complete.

Expected shape: near-linear descent while the per-shard work dominates
(the gzip decompress + scan split evenly), flattening only at block
granularity limits.  Geometry must stay byte-identical at every K.
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.cluster import ClusterClient, load_manifest, shard_object
from repro.core import NDPServer
from repro.filters import contour_grid
from repro.io import write_vgf
from repro.rpc import InProcessTransport
from repro.rpc.pool import EndpointPool
from repro.storage import ObjectStore, S3FileSystem
from repro.storage.netsim import Testbed

SHARD_COUNTS = (1, 2, 4, 8)
VALUES = [0.3]


def _assert_bytes_equal(a, b):
    assert a.points.tobytes() == b.points.tobytes()
    assert a.polys.connectivity.tobytes() == b.polys.connectivity.tobytes()
    assert a.polys.offsets.tobytes() == b.polys.offsets.tobytes()
    for x, y in zip(a.point_data, b.point_data):
        assert x.name == y.name and x.values.tobytes() == y.values.tobytes()


def _build_cluster(env, shards):
    """K shard servers over one backend, each metered by its own testbed."""
    grid = env.grid("asteroid", env.timesteps[0])
    backend = env.store.backend.__class__()
    setup_store = ObjectStore(backend)
    setup_store.create_bucket("sim")
    setup_fs = S3FileSystem(setup_store, "sim")
    key = f"k{shards}/full.vgf"
    setup_fs.write_object(key, write_vgf(grid, codec="gzip"))
    manifest_obj = shard_object(setup_fs, key, blocks=(1, 1, shards),
                                shards=shards)
    manifest = load_manifest(setup_fs, manifest_obj.manifest_key)

    testbeds = [Testbed() for _ in range(shards)]
    servers = []
    for tb in testbeds:
        fs = S3FileSystem(ObjectStore(backend, device=tb.ssd), "sim")
        servers.append(NDPServer(fs, testbed=tb))
    pool = EndpointPool([InProcessTransport(s.rpc.dispatch) for s in servers])
    return setup_fs, ClusterClient(pool, manifest), testbeds


def test_ext_cluster_scan_scaling(benchmark, bench_record, env):
    grid = env.grid("asteroid", env.timesteps[0])
    reference = contour_grid(grid, "v02", VALUES)

    rows, storage_s = [], {}
    last_fs = None
    for shards in SHARD_COUNTS:
        last_fs, cluster, testbeds = _build_cluster(env, shards)
        marks = [tb.clock.now for tb in testbeds]
        result, stats = cluster.contour("v02", VALUES)
        # The gather completes when the slowest shard does.
        critical = max(
            tb.clock.now - t0 for tb, t0 in zip(testbeds, marks)
        )
        storage_s[shards] = critical
        _assert_bytes_equal(result, reference)
        assert stats["fallback_blocks"] == 0
        rows.append({
            "shards": shards,
            "blocks": stats["blocks"],
            "storage_s": critical,
            "speedup": storage_s[1] / critical if critical else float("inf"),
            "wire_kB": stats["wire_bytes"] / 1e3,
            "selected": stats["selected_points"],
        })

    print_table(
        rows,
        title=("Extension — cluster scan scaling (asteroid v02, gzip, "
               "simulated storage-side seconds, critical path)"),
    )

    # Storage-side work must actually spread: monotone, and 8 shards at
    # least halve the single-server scan (linear would be 8x).
    curve = [storage_s[k] for k in SHARD_COUNTS]
    assert all(a >= b for a, b in zip(curve, curve[1:]))
    assert storage_s[8] < storage_s[1] / 2.0

    bench_record(
        storage_s={str(k): v for k, v in storage_s.items()},
        scaling_8x=storage_s[1] / storage_s[8],
    )
    benchmark(lambda: load_manifest(last_fs, "k8/full.manifest.json"))
