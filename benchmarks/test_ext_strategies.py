"""Extension — where should the pipeline cut? Array vs selection vs pixels.

The paper studies one cut (pre-filter near data, post-filter + rendering
on the client).  ParaView's client/server mode suggests a second cut
(render near data, ship pixels).  This bench compares all three
placements' *network* cost on the same workload:

1. **ship-array** (baseline): stored array crosses the link,
2. **ship-selection** (the paper's NDP): encoded selection crosses,
3. **ship-pixels** (render server): one PPM frame crosses.

Expected shape: selection wins while the contour is sparse relative to
the frame; pixels win once geometry outgrows a frame (or for thin
clients); the array never wins on a slow link.  A fourth column records
where the client keeps interactivity: strategies 1-2 leave geometry on
the client (re-render for free), strategy 3 pays the wire per view
change — the qualitative trade the paper's Sec. II describes.
"""

from repro.bench.reporting import print_table


def test_ext_placement_strategies(benchmark, env):
    width, height = 640, 480
    frame_bytes_nominal = width * height * 3
    rows = []
    for step in (env.timesteps[0], env.timesteps[len(env.timesteps) // 2],
                 env.timesteps[-1]):
        key = env.key("asteroid", "raw", step)
        _, base = env.baseline_load("asteroid", "raw", step, "v02")
        _, ndp = env.ndp_load("asteroid", "raw", step, "v02", [0.1])
        reply = env.ndp_client.call(
            "render_contour", key, "v02", [0.1], width, height, None
        )
        rows.append(
            {
                "timestep": step,
                "array_kb": base.network_bytes / 1e3,
                "selection_kb": ndp.network_bytes / 1e3,
                "pixels_kb": reply["stats"]["wire_bytes"] / 1e3,
                "triangles": reply["stats"]["triangles"],
            }
        )
    print_table(
        rows,
        title=(
            "Extension — network bytes per frame by pipeline cut "
            f"({width}x{height} frames are ~{frame_bytes_nominal / 1e3:.0f} kB)"
        ),
    )
    for row in rows:
        # The baseline array is always the most traffic on this workload.
        assert row["array_kb"] > row["selection_kb"]
        assert row["array_kb"] > row["pixels_kb"]
        # Pixels cost is ~constant (frame-sized) regardless of timestep.
        assert abs(row["pixels_kb"] - rows[0]["pixels_kb"]) < 0.5 * rows[0]["pixels_kb"]

    # At bench resolution the sparse early selections undercut a frame...
    assert rows[0]["selection_kb"] < rows[0]["pixels_kb"]

    key = env.key("asteroid", "raw", env.timesteps[0])
    benchmark(
        lambda: env.ndp_client.call(
            "render_contour", key, "v02", [0.1], 160, 120, None
        )
    )
