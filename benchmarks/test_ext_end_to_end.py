"""Extension — end-to-end assessment (the paper's stated future work).

The paper measures *data load time* only, noting that contour generation
and rendering "take between 0.8 to 1.3s" and are excluded, and that
"future work will include end-to-end performance assessments" (Sec. IX).
This bench is that assessment: simulated load time plus *measured*
compute time for contour generation and rendering, for the baseline and
NDP paths.

Expected shape: the downstream compute is identical in both paths (same
geometry, bit-exact), so it dilutes NDP's end-to-end advantage — the
speedup shrinks toward 1 as compute grows relative to load, which is
exactly why the paper scoped itself to load time.
"""

import time

from repro.bench.reporting import print_table
from repro.core.encoding import decode_selection
from repro.core.postfilter import postfilter_contour
from repro.filters import contour_grid
from repro.render import Scene


def _measure(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_ext_end_to_end(benchmark, env):
    rows = []
    for step in env.timesteps[:: max(1, len(env.timesteps) // 4)]:
        # Baseline: load whole array (simulated) + contour + render (real).
        grid, base = env.baseline_load("asteroid", "lz4", step, "v02")
        pd_base, t_contour = _measure(lambda: contour_grid(grid, "v02", [0.1]))
        scene = Scene()
        scene.add_mesh(pd_base)
        _, t_render = _measure(lambda: scene.render(160, 120))

        # NDP: offloaded load (simulated) + post-filter contour + render.
        encoded, ndp = env.ndp_load("asteroid", "lz4", step, "v02", [0.1])
        sel = decode_selection(encoded)
        pd_ndp, t_post = _measure(lambda: postfilter_contour(sel, [0.1]))
        scene2 = Scene()
        scene2.add_mesh(pd_ndp)
        _, t_render2 = _measure(lambda: scene2.render(160, 120))

        base_total = base.seconds + t_contour + t_render
        ndp_total = ndp.seconds + t_post + t_render2
        rows.append(
            {
                "timestep": step,
                "load_speedup": base.seconds / ndp.seconds,
                "base_e2e_s": base_total,
                "ndp_e2e_s": ndp_total,
                "e2e_speedup": base_total / ndp_total,
            }
        )
    print_table(
        rows,
        title="Extension — end-to-end (load + contour + render) vs load-only",
    )

    # Compute dominates at bench scale, diluting the advantage: end-to-end
    # speedup sits near 1 regardless of the load-only speedup.  The
    # contour/render phases are *measured* wall-clock, so allow scheduler
    # jitter around the bound.
    for row in rows:
        assert row["e2e_speedup"] < max(1.05 * row["load_speedup"], 1.2)
        assert row["e2e_speedup"] > 0.5

    step = env.timesteps[0]
    grid = env.grid("asteroid", step)
    benchmark(lambda: contour_grid(grid, "v02", [0.1]))
