"""Extension — storage-side caching: warm repeated-value sweeps.

The paper's interactive scenario (Sec. VI) is a user scrubbing contour
values over the same timestep: every request re-reads and re-decompresses
the same object.  With the storage-side :class:`~repro.storage.cache.ArrayCache`
the decoded array is paid for once, and the
:class:`~repro.storage.cache.SelectionCache` makes *revisited* values free.

This bench replays a value sweep three times against a cold (caches off)
and a warm (caches on) server on the calibrated simulated testbed and
reports simulated seconds per round.  GZip storage makes the read +
decompress the dominant cold cost — exactly what the caches elide — so
the warm sweep must come in at least 5x faster overall while returning
bit-identical geometry.
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.core import NDPServer, ndp_contour
from repro.io import write_vgf
from repro.rpc import InProcessTransport, RPCClient
from repro.storage import MemoryBackend, ObjectStore, S3FileSystem
from repro.storage.netsim import Testbed

VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
ROUNDS = 3


def _setup(env, cached: bool):
    tb = Testbed()
    store = ObjectStore(MemoryBackend(), device=tb.ssd)
    store.create_bucket("sim")
    fs = S3FileSystem(store, "sim")
    grid = env.grid("asteroid", env.timesteps[0])
    fs.write_object("ts.vgf", write_vgf(grid, codec="gzip"))
    tb.reset()
    kwargs = (
        dict(cache_bytes=256 * 2**20, selection_cache_bytes=64 * 2**20)
        if cached
        else {}
    )
    server = NDPServer(fs, testbed=tb, **kwargs)
    return tb, RPCClient(InProcessTransport(server.dispatch))


def _sweep(tb, client) -> list[float]:
    """One pass over VALUES; returns simulated seconds per request."""
    times = []
    for v in VALUES:
        t0 = tb.clock.now
        client.call("prefilter_contour", "ts.vgf", "v02", [v])
        times.append(tb.clock.now - t0)
    return times


def test_ext_cache_warm_sweep(benchmark, env):
    tb_cold, cold = _setup(env, cached=False)
    tb_warm, warm = _setup(env, cached=True)

    cold_rounds = [sum(_sweep(tb_cold, cold)) for _ in range(ROUNDS)]
    warm_rounds = [sum(_sweep(tb_warm, warm)) for _ in range(ROUNDS)]

    rows = [
        {
            "round": i + 1,
            "cold_s": cold_rounds[i],
            "warm_s": warm_rounds[i],
            "speedup": cold_rounds[i] / warm_rounds[i] if warm_rounds[i] else float("inf"),
        }
        for i in range(ROUNDS)
    ]
    total_cold = sum(cold_rounds)
    total_warm = sum(warm_rounds)
    rows.append(
        {
            "round": "total",
            "cold_s": total_cold,
            "warm_s": total_warm,
            "speedup": total_cold / total_warm,
        }
    )
    print_table(
        rows,
        title=(
            f"Extension — warm-cache value sweep ({len(VALUES)} values x "
            f"{ROUNDS} rounds, gzip storage, simulated s)"
        ),
    )

    # The caches must actually be doing the work they claim.
    stats = warm.call("server_stats")
    assert stats["array_cache"]["hits"] >= 1
    assert stats["array_cache"]["misses"] == 1  # one decode for the whole sweep
    assert stats["selection_cache"]["hits"] == (ROUNDS - 1) * len(VALUES)

    # Warm rounds 2+ are pure selection-cache hits: free on the simulated clock.
    assert all(t == 0.0 for t in warm_rounds[1:])
    # Overall: at least the acceptance 5x (read+decompress dominate cold).
    assert total_cold > 5.0 * total_warm

    # Correctness is non-negotiable: warm geometry == cold geometry.
    for v in VALUES:
        pd_cold, _ = ndp_contour(cold, "ts.vgf", "v02", [v])
        pd_warm, _ = ndp_contour(warm, "ts.vgf", "v02", [v])
        assert np.array_equal(pd_cold.points, pd_warm.points)
        assert np.array_equal(pd_cold.polys.connectivity, pd_warm.polys.connectivity)

    benchmark(lambda: warm.call("prefilter_contour", "ts.vgf", "v02", [0.5]))
