"""Hot-path microbenchmark: the storage-side critical chain at MB/s.

Extension benchmark (not a paper artifact): measures each phase of the
NDP server's critical path — ranged block **read**, **decompress**,
interesting-**scan**, selection-**encode** — as a throughput in MB/s,
next to a ``np.copyto`` memcpy bound measured on the same machine.  The
bound is what "hardware speed" means here: a phase running at a
meaningful fraction of memcpy has no software fat left to trim.

Two implementations of the whole chain run against the same stored
block:

* *fused* — the current hot path: :func:`read_vgf_block` (no decode),
  the codec's incremental decoder streamed straight into
  :func:`prefilter_contour_stream` (single-pass multi-value scan, no
  materialized decoded array), and the zero-copy
  :func:`encode_selection`.
* *legacy* — a frozen copy of the pre-optimization pipeline: full
  decode + ``frombuffer().copy()`` materialize, one neighbour-diff pass
  **per contour value**, and a ``tobytes()``-copying encode.  Embedded
  here (not imported) so the baseline cannot drift as the library
  improves.

Both must produce byte-identical selections; the fused chain must beat
legacy by >= 2x on the RAW-codec chain at the default size.  Per-phase
MB/s land in ``BENCH_results.json`` via ``bench_record``.

Size defaults to a 128^3 float32 array (8 MiB raw); set
``REPRO_HOTPATH_DIM`` to scale.
"""

import io
import os
import time

import numpy as np
import pytest

from repro.compression import get_codec
from repro.core.encoding import decode_selection, encode_selection
from repro.core.prefilter import prefilter_contour_stream
from repro.grid.array import DataArray
from repro.grid.selection import PointSelection
from repro.grid.uniform import UniformGrid
from repro.io.vgf import read_vgf_array, read_vgf_block, read_vgf_info, write_vgf
from repro.rpc.msgpack import pack

DIM = int(os.environ.get("REPRO_HOTPATH_DIM", "128"))
VALUES = (-0.8, -0.3, 0.0, 0.4, 0.9)
MODE = "cell-closure"
_MB = 1e6


def _best_of(fn, repeats: int = 3):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


# ---------------------------------------------------------------------------
# Frozen legacy pipeline (pre-optimization, embedded so it cannot drift)
# ---------------------------------------------------------------------------


def _legacy_cell_closure_point_mask(f: np.ndarray, vals) -> np.ndarray:
    from repro.core.interesting import cell_mask_to_point_mask

    f = f.astype(np.float64, copy=False)
    lo = hi = f
    for axis in range(3):
        if f.shape[axis] > 1:
            a, b = [slice(None)] * 3, [slice(None)] * 3
            a[axis], b[axis] = slice(None, -1), slice(1, None)
            lo = np.minimum(lo[tuple(a)], lo[tuple(b)])
            hi = np.maximum(hi[tuple(a)], hi[tuple(b)])
    active = np.zeros(lo.shape, dtype=bool)
    for v in vals:
        active |= (hi >= v) & (lo < v)
    return cell_mask_to_point_mask(active, f.shape)


def _legacy_materialize(blob: bytes, array: str):
    """Full decode into a writable grid (the old ``_read_array``)."""
    fh = io.BytesIO(blob)
    info = read_vgf_info(fh)
    entry = info.array(array)
    fh.seek(info.data_start + entry.offset)
    stored = fh.read(entry.stored_bytes)
    payload = get_codec(entry.codec).decompress(stored)
    values = np.frombuffer(payload, dtype=np.dtype(entry.dtype)).copy()
    grid = info.make_grid()
    grid.point_data.add(DataArray(entry.name, values))
    return grid, entry


def _legacy_scan(grid, array: str, vals) -> PointSelection:
    """One neighbour-diff pass per value (the seed's scan)."""
    field = grid.scalar_field(array)
    mask = _legacy_cell_closure_point_mask(field, vals)
    ids = np.nonzero(mask.reshape(-1))[0].astype(np.int64)
    return PointSelection.from_grid(grid, array, ids)


_WIDTH_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _legacy_encode(sel: PointSelection) -> dict:
    """The seed's copying ``"ids"`` encode: ``tobytes()`` per payload,
    same field layout as the current zero-copy one (so the wire dicts of
    both chains can be compared byte-for-byte after packing)."""
    if sel.ids.size == 0:
        id_payload, width, first = b"", 1, 0
    else:
        deltas = np.diff(sel.ids)
        first = int(sel.ids[0])
        peak = int(deltas.max()) if deltas.size else 0
        width = 8
        for w in (1, 2, 4, 8):
            if peak < (1 << (8 * w)):
                width = w
                break
        id_payload = deltas.astype(_WIDTH_DTYPES[width]).tobytes()
    return {
        "dims": list(sel.dims),
        "origin": list(sel.origin),
        "spacing": list(sel.spacing),
        "array": sel.array_name,
        "dtype": sel.values.dtype.str,
        "count": int(sel.count),
        "values": np.ascontiguousarray(sel.values).tobytes(),
        "method": "ids",
        "id_deltas": id_payload,
        "id_width": width,
        "id_first": first,
    }


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def dataset():
    """One wavy field stored as VGF under raw and gzip."""
    n = DIM
    rng = np.random.default_rng(42)
    z, y, x = np.meshgrid(
        np.linspace(0, 4 * np.pi, n),
        np.linspace(0, 4 * np.pi, n),
        np.linspace(0, 4 * np.pi, n),
        indexing="ij",
    )
    f = (np.sin(x) * np.cos(2 * y) + 0.5 * np.sin(3 * z)).astype(np.float32)
    f += rng.normal(scale=0.05, size=f.shape).astype(np.float32)
    grid = UniformGrid((n, n, n), (0, 0, 0), (1, 1, 1))
    grid.point_data.add(DataArray("s", f.reshape(-1)))
    return {
        codec: write_vgf(grid, codec=codec) for codec in ("raw", "gzip")
    }


def _fused_chain(blob: bytes, array: str):
    fh = io.BytesIO(blob)
    info = read_vgf_info(fh)
    stored, entry = read_vgf_block(fh, array, info)
    sel = prefilter_contour_stream(
        get_codec(entry.codec).iter_decompress(stored),
        info.dims, np.dtype(entry.dtype), array, VALUES, mode=MODE,
        origin=info.origin, spacing=info.spacing,
    )
    return encode_selection(sel, method="ids", payload_codec="raw")


def _legacy_chain(blob: bytes, array: str):
    grid, _ = _legacy_materialize(blob, array)
    return _legacy_encode(_legacy_scan(grid, array, VALUES))


# ---------------------------------------------------------------------------
# The benchmark
# ---------------------------------------------------------------------------


def test_hotpath_phases_and_speedup(dataset, bench_record):
    raw_bytes = DIM**3 * 4
    table: dict[str, float] = {}

    # The machine's own ceiling: one big aligned copy.
    src = np.zeros(raw_bytes, dtype=np.uint8)
    dst = np.empty_like(src)
    t, _ = _best_of(lambda: np.copyto(dst, src), repeats=5)
    table["memcpy_MBps"] = raw_bytes / t / _MB

    for codec_name, blob in dataset.items():
        fh = io.BytesIO(blob)
        info = read_vgf_info(fh)
        entry = info.array("s")

        t, (stored, _) = _best_of(lambda: read_vgf_block(io.BytesIO(blob), "s"))
        table[f"{codec_name}_read_MBps"] = entry.stored_bytes / t / _MB

        codec = get_codec(codec_name)
        t, _ = _best_of(lambda: codec.decompress(stored))
        table[f"{codec_name}_decompress_MBps"] = raw_bytes / t / _MB

        t, sel = _best_of(
            lambda: prefilter_contour_stream(
                codec.iter_decompress(stored), info.dims,
                np.dtype(entry.dtype), "s", VALUES, mode=MODE,
            )
        )
        table[f"{codec_name}_scan_MBps"] = raw_bytes / t / _MB

        t, _ = _best_of(
            lambda: encode_selection(sel, method="ids", payload_codec="raw")
        )
        table[f"{codec_name}_encode_MBps"] = sel.payload_nbytes / t / _MB

        # Interleave the two chains so load drift on the host hits both
        # equally instead of skewing the ratio.
        t_fused = t_legacy = float("inf")
        fused = legacy = None
        for _ in range(5):
            t0 = time.perf_counter()
            fused = _fused_chain(blob, "s")
            t1 = time.perf_counter()
            legacy = _legacy_chain(blob, "s")
            t2 = time.perf_counter()
            t_fused = min(t_fused, t1 - t0)
            t_legacy = min(t_legacy, t2 - t1)
        table[f"{codec_name}_chain_fused_MBps"] = raw_bytes / t_fused / _MB
        table[f"{codec_name}_chain_legacy_MBps"] = raw_bytes / t_legacy / _MB
        table[f"{codec_name}_chain_speedup"] = t_legacy / t_fused

        # Geometry invariant: both chains ship identical bytes.
        a, b = decode_selection(fused), decode_selection(legacy)
        assert np.array_equal(a.ids, b.ids)
        assert a.values.tobytes() == b.values.tobytes()
        assert pack(dict(fused)) == pack(dict(legacy))

    bench_record(dim=DIM, raw_bytes=raw_bytes, **table)

    print(f"\nhot path at {DIM}^3 (float32, {len(VALUES)} contour values)")
    print(f"  memcpy bound          {table['memcpy_MBps']:10.0f} MB/s")
    for codec_name in dataset:
        for phase in ("read", "decompress", "scan", "encode"):
            print(
                f"  {codec_name:5s} {phase:12s}     "
                f"{table[f'{codec_name}_{phase}_MBps']:10.0f} MB/s"
            )
        print(
            f"  {codec_name:5s} chain fused/legacy "
            f"{table[f'{codec_name}_chain_fused_MBps']:7.0f} / "
            f"{table[f'{codec_name}_chain_legacy_MBps']:.0f} MB/s "
            f"({table[f'{codec_name}_chain_speedup']:.2f}x)"
        )

    # The tentpole target: >= 2x wall-clock on the storage-side critical
    # path where software overhead dominates (RAW: no codec work to hide
    # behind).  gzip is decompress-bound, so only the weaker bound holds.
    assert table["raw_chain_speedup"] >= 2.0, table
    assert table["gzip_chain_speedup"] >= 1.0, table


def test_hotpath_fused_matches_materializing_reader(dataset):
    """The fused chain agrees with today's library reader too (not just
    the frozen legacy): decode-then-scan through the current code."""
    from repro.core.prefilter import prefilter_contour

    blob = dataset["gzip"]
    fh = io.BytesIO(blob)
    info = read_vgf_info(fh)
    arr, entry = read_vgf_array(fh, "s", info)
    grid = info.make_grid()
    grid.point_data.add(arr)
    ref = prefilter_contour(grid, "s", VALUES, mode=MODE)
    stored, _ = read_vgf_block(io.BytesIO(blob), "s")
    got = prefilter_contour_stream(
        get_codec("gzip").iter_decompress(stored), info.dims,
        np.dtype(entry.dtype), "s", VALUES, mode=MODE,
        origin=info.origin, spacing=info.spacing,
    )
    assert got == ref
