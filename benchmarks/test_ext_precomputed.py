"""Extension — precomputed (in-situ-style) selections vs on-demand NDP.

The paper's Sec. VIII separates NDP from in-situ analysis; this bench
measures the hybrid (see :mod:`repro.core.insitu`): pre-filter at
simulation-write time and store the selection beside the data.  At
analysis time the client fetches only the tiny selection object — no
array read, no decompression, no scan on anyone's clock.

Expected shape: precomputed beats on-demand NDP by the storage-side work
it amortizes (the SSD read of the array dominates), at the cost of fixing
the contour values in advance.
"""

from repro.bench.reporting import print_table
from repro.core.insitu import ndp_contour_precomputed, precompute_selections
from repro.storage.s3fs import S3FileSystem


def test_ext_precomputed_selections(benchmark, env):
    # "Simulation time": precompute selections next to each raw object
    # through a local (uncharged) mount.
    # The write-time work happens before the measured analysis phase; any
    # clock charges it incurs are wiped by the resets around it.
    local = S3FileSystem(env.store, "sim", link=None)
    env.testbed.reset()
    for step in env.timesteps:
        precompute_selections(local, env.key("asteroid", "raw", step), ["v02"], [0.1])
    env.testbed.reset()

    # "Analysis time": remote mount fetching precomputed selections.
    remote = S3FileSystem(env.store, "sim", link=env.testbed.net, chunk_bytes=256 * 1024)
    rows = []
    for step in env.timesteps:
        t0 = env.testbed.clock.now
        _, pre_stats = ndp_contour_precomputed(
            remote, env.key("asteroid", "raw", step), "v02", [0.1]
        )
        pre_seconds = env.testbed.clock.now - t0
        _, ondemand = env.ndp_load("asteroid", "raw", step, "v02", [0.1])
        _, baseline = env.baseline_load("asteroid", "raw", step, "v02")
        rows.append(
            {
                "timestep": step,
                "baseline_s": baseline.seconds,
                "ndp_s": ondemand.seconds,
                "precomputed_s": pre_seconds,
                "pre_vs_ndp": ondemand.seconds / pre_seconds,
            }
        )
    print_table(
        rows, title="Extension — precomputed selections vs on-demand NDP (RAW v02)"
    )
    for row in rows:
        assert row["precomputed_s"] < row["ndp_s"] < row["baseline_s"]
    # Precomputation amortizes the array read: at least 2x over NDP.
    assert all(row["pre_vs_ndp"] > 2.0 for row in rows)

    step = env.timesteps[0]
    env.testbed.reset()
    benchmark(
        lambda: ndp_contour_precomputed(
            remote, env.key("asteroid", "raw", step), "v02", [0.1]
        )
    )
