"""Table II — speedup matrix over data-reduction technique combinations.

Paper values (500^3 testbed): NDP 2.30-2.80x, GZip ~3.95x, LZ4 ~4.60x,
GZip+NDP 4.77-7.36x, LZ4+NDP 6.22-11.87x; within each array NDP's speedup
rises slightly with the contour value, and every v03 row beats its v02
counterpart.  The assertions check those *orderings*; EXPERIMENTS.md
records measured-vs-paper magnitudes.
"""

from repro.bench.experiments import run_table2
from repro.bench.reporting import print_table


def test_table2_speedup_matrix(benchmark, env):
    rows = run_table2(env)
    print_table(
        rows,
        title=(
            "Table II — speedups vs RAW baseline "
            "(paper: NDP 2.3-2.8, GZip 3.95, LZ4 4.6, G+N 4.8-7.4, L+N 6.2-11.9)"
        ),
    )

    by_array = {"v02": [], "v03": []}
    for row in rows:
        by_array[row["array"]].append(row)
        # Combinations always beat NDP alone, and LZ4+NDP leads overall.
        assert row["GZip+NDP"] > row["NDP"]
        assert row["LZ4+NDP"] > row["GZip+NDP"]
        # Paper band sanity: NDP alone is a modest 1.2x-3.5x.
        assert 1.2 < row["NDP"] < 3.5
        # Adding NDP on top of a codec strictly helps on v03 (as in the
        # paper); on v02 our bench-resolution selections are ~5x the
        # paper's relative size (selectivity ~ 1/N), so allow a small
        # inversion there, bounded to 15%.
        if row["array"] == "v03":
            assert row["GZip+NDP"] > row["GZip"]
            assert row["LZ4+NDP"] > row["LZ4"]
        else:
            assert row["GZip+NDP"] > 0.85 * row["GZip"]
            assert row["LZ4+NDP"] > 0.85 * row["LZ4"]

    # NDP speedup rises with contour value within each array.
    for rows_a in by_array.values():
        ndps = [r["NDP"] for r in sorted(rows_a, key=lambda r: r["value"])]
        assert ndps[-1] > ndps[0]

    # v03 consistently beats v02 at the same contour value.
    for r02, r03 in zip(by_array["v02"], by_array["v03"]):
        assert r03["NDP"] > r02["NDP"]
        assert r03["LZ4+NDP"] > r02["LZ4+NDP"]

    step = env.timesteps[0]
    benchmark(lambda: env.baseline_load("asteroid", "raw", step, "v02"))
