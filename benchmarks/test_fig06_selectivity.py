"""Fig. 6 — data selection rates in permillage, v02 (6a) and v03 (6b).

Paper shape: rates span fractions of a permille to a few permille at
500^3 (ours scale by ~500/N, see test_abl_resolution); v03 is far more
selective than v02; v02's rate rises after the impact; rates fall as the
contour value rises (the property behind Table II's value ordering).
"""

from repro.bench.experiments import run_fig6
from repro.bench.reporting import print_table
from repro.core.prefilter import prefilter_contour


def test_fig06_selection_rates(benchmark, env):
    rows = {}
    for array, fig in (("v02", "6a"), ("v03", "6b")):
        rows[array] = run_fig6(env, array)
        print_table(rows[array], title=f"Fig. {fig} — selection permillage, {array}")

    mid = len(env.timesteps) // 2
    # v03 much more selective than v02 at every timestep.
    for r02, r03 in zip(rows["v02"], rows["v03"]):
        assert r03["val0.1"] < r02["val0.1"]
    # v02 selectivity rises after impact.
    assert rows["v02"][-1]["val0.1"] > 1.5 * rows["v02"][0]["val0.1"]
    # Rate falls with contour value late in the run.
    assert rows["v02"][-1]["val0.9"] < rows["v02"][-1]["val0.1"]
    assert rows["v03"][-1]["val0.9"] < rows["v03"][-1]["val0.1"]

    grid = env.grid("asteroid", env.timesteps[mid])
    benchmark(lambda: prefilter_contour(grid, "v02", [0.1], mode="edge"))
