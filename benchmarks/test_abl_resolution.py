"""Ablation — selection rate vs grid resolution (the 500^3 extrapolation).

The paper measures Fig. 6 on 500^3 grids; our benches run far smaller.
A material interface is a 2-D surface in a 3-D volume, so its point count
scales as N^2 against N^3 total: selectivity ~ 1/N.  This sweep verifies
the scaling on the generator and extrapolates the bench-resolution rates
to the paper's 500^3, landing them in the paper's few-permille band.
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.core.prefilter import selection_rate
from repro.datasets import AsteroidImpactDataset, AsteroidParams


def test_abl_selectivity_resolution_scaling(benchmark, env):
    dims_list = (24, 36, 48, 72)
    rows = []
    for n in dims_list:
        ds = AsteroidImpactDataset(AsteroidParams(dims=(n, n, n)))
        grid = ds.generate_arrays(0, ["v02"])
        rate = selection_rate(grid, "v02", [0.1])
        rows.append(
            {
                "N": n,
                "permille": rate,
                "permille_x_N": rate * n,
                "extrapolated_500": rate * n / 500.0,
            }
        )
    print_table(
        rows,
        title="Ablation — v02 selection rate vs resolution (pre-impact surface)",
    )

    # permille * N should be roughly constant (surface/volume scaling).
    products = np.array([row["permille_x_N"] for row in rows])
    assert products.max() / products.min() < 1.6

    # Extrapolated to the paper's 500^3: a few permille, matching Fig. 6a.
    extrapolated = rows[-1]["extrapolated_500"]
    assert 0.5 < extrapolated < 8.0

    ds = AsteroidImpactDataset(AsteroidParams(dims=(48, 48, 48)))
    benchmark(lambda: ds.generate_arrays(0, ["v02"]))
