"""Ablation — NDP speedup vs network:SSD bandwidth ratio (beyond the paper).

The paper notes NDP's gain "is upperbounded by local data read times"
(Sec. VI): the slower the link relative to the SSD path, the bigger the
win; with a link as fast as the SSD there is little left to save.  This
sweep makes the crossover explicit, and is the quantitative form of the
planner's decision rule.
"""

from repro.bench.experiments import run_link_sweep
from repro.bench.reporting import print_table
from repro.core.planner import OffloadPlanner


def test_abl_link_bandwidth_sweep(benchmark, env):
    rows = run_link_sweep(env, ratios=(0.125, 0.25, 0.5, 1.0, 2.0, 4.0))
    print_table(rows, title="Ablation — NDP speedup vs link:SSD bandwidth ratio")
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups, reverse=True)  # monotone
    assert speedups[0] > 3.0   # slow link: big NDP win
    assert speedups[-1] < 1.5  # fast link: little to save

    planner = OffloadPlanner(env.testbed)
    benchmark(lambda: planner.decide(500_000_000, 500_000_000, "raw", 0.002))
