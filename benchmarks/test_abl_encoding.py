"""Ablation — selection wire-encoding choice (beyond the paper).

Compares the delta-coded id encoding, the bitmap encoding, and the auto
chooser across the run's selectivity range.  Expected: ids wins at the
low selectivities the paper's workloads live at; bitmap wins once
selectivity climbs past a few percent; auto always matches the winner.
"""

from repro.bench.experiments import run_encoding_ablation
from repro.bench.reporting import print_table
from repro.core.encoding import decode_selection, encode_selection


def test_abl_encoding_sizes(benchmark, env):
    for array in ("v02", "v03"):
        rows = run_encoding_ablation(env, array)
        print_table(rows, title=f"Ablation — wire encoding sizes (kB), {array}")
        for row in rows:
            assert row["auto_kb"] <= min(row["ids_kb"], row["bitmap_kb"]) + 1e-9
            # Compressing the payload always shrinks the wire further.
            assert row["auto+lz4_kb"] < row["auto_kb"]
            assert row["auto+gzip_kb"] < row["auto_kb"]
        # At the asteroid's tiny selectivity, ids must beat bitmap.
        v03_rows = rows if array == "v03" else None
    assert v03_rows is not None
    for row in v03_rows:
        assert row["ids_kb"] < row["bitmap_kb"]

    sel = env.selection("asteroid", env.timesteps[-1], "v02", [0.1, 0.3, 0.5, 0.7, 0.9])
    benchmark(lambda: decode_selection(encode_selection(sel)))
